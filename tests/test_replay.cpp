// Record/replay regression harness tests:
//   * golden parity — a deterministically recorded 3-session ingest run must
//     replay bit-identically at any worker count, under all three
//     backpressure policies (plus rate limiting and idle eviction);
//   * the checked-in trace corpus (tests/corpus/*.sljtrace) replays
//     bit-identically modulo a posterior tolerance for cross-libm builds;
//   * divergence detection — a tampered golden output is reported, not
//     silently accepted;
//   * format robustness — truncated files, bit-flipped bytes and oversized
//     length prefixes fail with std::runtime_error, never UB (this file is
//     part of the ASan/UBSan job: scripts/ci.sh --sanitize / --replay).
#include "replay/trace_replayer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ingest/ingest_service.hpp"
#include "replay/trace_recorder.hpp"
#include "synth/dataset.hpp"

namespace slj::replay {
namespace {

using namespace std::chrono_literals;

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// Tiny noise-free studio clip: flat-colour frames keep traces small and the
/// vision pass fast while still driving the full pipeline.
synth::Clip mini_clip(std::uint32_t seed = 2008, int frame_count = 10) {
  synth::ClipSpec spec;
  spec.seed = seed;
  spec.frame_count = frame_count;
  spec.camera.width = 96;
  spec.camera.height = 64;
  spec.camera.pixels_per_meter = 24.0;
  spec.camera.origin_x_px = 12.0;
  spec.camera.ground_y_px = 60.0;
  spec.camera.sensor_noise_sigma = 0.0;
  spec.camera.speckle_fraction = 0.0;
  return synth::generate_clip(spec);
}

struct ManualClock {
  std::atomic<std::int64_t> nanos{0};
  std::function<ingest::Clock::time_point()> fn() {
    return [this] { return ingest::Clock::time_point{ingest::Clock::duration{nanos.load()}}; };
  }
  void advance(ingest::Clock::duration d) { nanos.fetch_add(d.count()); }
};

struct RecordSpec {
  ingest::BackpressurePolicy policy = ingest::BackpressurePolicy::kDropOldest;
  int sessions = 3;
  int frames_per_session = 8;
  int pushes_per_round = 3;  ///< > capacity exercises the shed path
  std::size_t capacity = 2;
  double rate_tokens_per_second = 0.0;
};

/// Deterministic in-process recording: manual clock, stopped scheduler,
/// inline flush() drains — the same recipe as `sljtool record`.
void record_trace(const std::string& path, const pose::PoseDbnClassifier& classifier,
                  const synth::Clip& clip, const RecordSpec& spec) {
  ManualClock clock;
  ingest::IngestServiceConfig config;
  config.manager.workers = 2;
  config.router.clock = clock.fn();
  ingest::IngestService service(classifier, {}, config);
  TraceRecorder recorder(path);
  service.set_tap(&recorder);

  ingest::IngestSessionConfig session_config;
  session_config.queue.capacity = spec.capacity;
  session_config.queue.policy = spec.policy;
  session_config.queue.rate.tokens_per_second = spec.rate_tokens_per_second;
  session_config.queue.rate.burst = 2.0;
  int per_round = spec.pushes_per_round;
  if (spec.policy == ingest::BackpressurePolicy::kBlock &&
      per_round > static_cast<int>(spec.capacity)) {
    per_round = static_cast<int>(spec.capacity);  // a blocking push would deadlock
  }

  std::vector<int> ids;
  for (int s = 0; s < spec.sessions; ++s) {
    ids.push_back(service.open_session(clip.background, session_config));
  }
  std::vector<std::size_t> next(ids.size());
  for (std::size_t s = 0; s < ids.size(); ++s) next[s] = s;
  const long target = static_cast<long>(spec.frames_per_session) * spec.sessions;
  long pushed = 0;
  while (pushed < target) {
    for (std::size_t s = 0; s < ids.size(); ++s) {
      for (int k = 0; k < per_round && pushed < target; ++k) {
        service.push(ids[s], clip.frames[next[s] % clip.frames.size()]);
        ++next[s];
        ++pushed;
      }
    }
    clock.advance(16ms);
    service.flush();
  }
  for (const int id : ids) service.close_session(id);
  recorder.finish(service.metrics());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

// ---- golden parity ---------------------------------------------------------

TEST(Replay, GoldenParityAcrossWorkersAndPolicies) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = mini_clip();
  const ingest::BackpressurePolicy policies[] = {
      ingest::BackpressurePolicy::kBlock,
      ingest::BackpressurePolicy::kDropOldest,
      ingest::BackpressurePolicy::kRejectNewest,
  };
  for (const auto policy : policies) {
    const std::string path =
        temp_path(std::string("parity_") + ingest::policy_name(policy) + ".sljtrace");
    RecordSpec spec;
    spec.policy = policy;
    record_trace(path, classifier, clip, spec);

    for (const unsigned workers : {1u, 2u, 4u}) {
      ReplayOptions options;
      options.workers = workers;  // tolerance 0: must be bit-identical
      const ReplayResult result = TraceReplayer(classifier, {}, options).replay_file(path);
      EXPECT_TRUE(result.identical())
          << ingest::policy_name(policy) << " @ " << workers
          << " workers: " << result.first_mismatch();
      EXPECT_EQ(result.sessions_opened, 3u);
      EXPECT_EQ(result.sessions_closed, 3u);
      EXPECT_GT(result.frames_replayed, 0u);
      EXPECT_TRUE(result.has_summary);
    }
  }
}

TEST(Replay, RateLimitedRecordingReplaysIdentically) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = mini_clip();
  const std::string path = temp_path("parity_rate.sljtrace");
  RecordSpec spec;
  spec.pushes_per_round = 2;
  spec.rate_tokens_per_second = 30.0;  // every other 16 ms round runs dry
  record_trace(path, classifier, clip, spec);

  const ReplayResult result = TraceReplayer(classifier).replay_file(path);
  EXPECT_TRUE(result.identical()) << result.first_mismatch();

  // The limiter must actually have shed pushes, or the test proves nothing.
  const Trace trace = load_trace(path);
  std::uint64_t rate_limited = 0;
  for (const TraceRecord& record : trace.records) {
    if (const auto* push = std::get_if<PushRecord>(&record)) {
      rate_limited += push->outcome == ingest::PushOutcome::kRateLimited ? 1 : 0;
    }
  }
  EXPECT_GT(rate_limited, 0u);
}

TEST(Replay, IdleEvictionRoundTrips) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = mini_clip();
  const std::string path = temp_path("parity_evict.sljtrace");

  ManualClock clock;
  ingest::IngestServiceConfig config;
  config.manager.workers = 1;
  config.router.clock = clock.fn();
  ingest::IngestService service(classifier, {}, config);
  TraceRecorder recorder(path);
  service.set_tap(&recorder);

  ingest::IngestSessionConfig evictable;
  evictable.queue.capacity = 4;
  evictable.idle_timeout = 100ms;
  const int dies = service.open_session(clip.background, evictable);
  const int lives = service.open_session(clip.background, evictable);

  for (int i = 0; i < 3; ++i) {
    service.push(dies, clip.frames[static_cast<std::size_t>(i)]);
    service.push(lives, clip.frames[static_cast<std::size_t>(i)]);
    clock.advance(16ms);
    service.flush();
  }
  // Only `lives` stays active; the next pass evicts `dies` mid-recording.
  clock.advance(200ms);
  service.push(lives, clip.frames[3]);
  service.flush();
  service.close_session(lives);
  recorder.finish(service.metrics());

  for (const unsigned workers : {1u, 3u}) {
    ReplayOptions options;
    options.workers = workers;
    const ReplayResult result = TraceReplayer(classifier, {}, options).replay_file(path);
    EXPECT_TRUE(result.identical()) << result.first_mismatch();
    EXPECT_EQ(result.sessions_closed, 2u);  // one evicted, one closed
  }
}

// ---- the checked-in corpus -------------------------------------------------

TEST(Replay, CorpusReplaysBitIdentically) {
  const std::filesystem::path corpus(SLJ_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(corpus)) << corpus;

  const pose::PoseDbnClassifier classifier;  // corpus is recorded untrained
  std::size_t traces = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() != ".sljtrace") continue;
    ++traces;
    for (const unsigned workers : {1u, 4u}) {
      ReplayOptions options;
      options.workers = workers;
      // Posteriors come out of exp/log, which differ by a few ulps across
      // libm builds; everything else must still match exactly.
      options.posterior_tolerance = 1e-9;
      const ReplayResult result =
          TraceReplayer(classifier, {}, options).replay_file(entry.path().string());
      EXPECT_TRUE(result.identical())
          << entry.path().filename() << " @ " << workers << " workers: "
          << result.first_mismatch();
      EXPECT_EQ(result.sessions_opened, 3u) << entry.path().filename();
      EXPECT_TRUE(result.has_summary) << entry.path().filename();
    }
  }
  // One per backpressure policy plus the rate-limited run.
  EXPECT_GE(traces, 4u);
}

// ---- divergence detection --------------------------------------------------

TEST(Replay, DetectsTamperedGoldenOutputs) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = mini_clip();
  const std::string path = temp_path("tamper_base.sljtrace");
  RecordSpec spec;
  record_trace(path, classifier, clip, spec);
  const Trace trace = load_trace(path);

  {  // a flipped posterior ulp must be caught at tolerance 0
    Trace tampered = trace;
    bool done = false;
    for (TraceRecord& record : tampered.records) {
      if (auto* tick = std::get_if<TickRecord>(&record); tick && !tick->entries.empty()) {
        tick->entries[0].update.result.posterior =
            tick->entries[0].update.result.posterior * (1.0 + 1e-15) + 1e-300;
        done = true;
        break;
      }
    }
    ASSERT_TRUE(done);
    const std::string tampered_path = temp_path("tamper_posterior.sljtrace");
    save_trace(tampered, tampered_path);
    const ReplayResult result = TraceReplayer(classifier).replay_file(tampered_path);
    EXPECT_GT(result.update_mismatches, 0u);
    EXPECT_FALSE(result.identical());
  }

  {  // a tampered final report must be caught
    Trace tampered = trace;
    bool done = false;
    for (TraceRecord& record : tampered.records) {
      if (auto* close = std::get_if<CloseRecord>(&record);
          close && !close->report.findings.empty()) {
        close->report.findings[0].passed = !close->report.findings[0].passed;
        done = true;
        break;
      }
    }
    ASSERT_TRUE(done);
    const std::string tampered_path = temp_path("tamper_report.sljtrace");
    save_trace(tampered, tampered_path);
    const ReplayResult result = TraceReplayer(classifier).replay_file(tampered_path);
    EXPECT_GT(result.report_mismatches, 0u);
  }

  {  // cooked books: a wrong discard count breaks the accounting re-balance
    Trace tampered = trace;
    bool done = false;
    for (TraceRecord& record : tampered.records) {
      if (auto* close = std::get_if<CloseRecord>(&record)) {
        close->discarded += 1;
        done = true;
        break;
      }
    }
    ASSERT_TRUE(done);
    const std::string tampered_path = temp_path("tamper_books.sljtrace");
    save_trace(tampered, tampered_path);
    const ReplayResult result = TraceReplayer(classifier).replay_file(tampered_path);
    EXPECT_GT(result.accounting_mismatches, 0u);
  }
}

TEST(Replay, RejectsStructurallyTornTraces) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = mini_clip();
  const std::string path = temp_path("torn_base.sljtrace");
  RecordSpec spec;
  record_trace(path, classifier, clip, spec);
  const Trace trace = load_trace(path);

  {  // a tick naming a session that never opened (torn prefix)
    Trace torn = trace;
    std::erase_if(torn.records,
                  [](const TraceRecord& r) { return std::holds_alternative<OpenRecord>(r); });
    const std::string torn_path = temp_path("torn_no_open.sljtrace");
    save_trace(torn, torn_path);
    EXPECT_THROW(TraceReplayer(classifier).replay_file(torn_path), std::runtime_error);
  }

  {  // a tick referencing a frame no push record admitted
    Trace torn = trace;
    bool done = false;
    for (TraceRecord& record : torn.records) {
      if (auto* tick = std::get_if<TickRecord>(&record); tick && !tick->entries.empty()) {
        tick->entries[0].sequence += 1000;
        done = true;
        break;
      }
    }
    ASSERT_TRUE(done);
    const std::string torn_path = temp_path("torn_frame.sljtrace");
    save_trace(torn, torn_path);
    EXPECT_THROW(TraceReplayer(classifier).replay_file(torn_path), std::runtime_error);
  }
}

// ---- format round trip -----------------------------------------------------

TEST(TraceFormat, RoundTripPreservesEveryRecordType) {
  Trace trace;
  OpenRecord open;
  open.t_ns = 123;
  open.session = 0;
  open.config.queue_capacity = 5;
  open.config.policy = ingest::BackpressurePolicy::kRejectNewest;
  open.config.rate_tokens_per_second = 12.5;
  open.config.idle_timeout_ns = 777;
  open.config.decoder = core::StreamDecoder::kFiltering;
  open.config.use_tracker = true;
  open.background = RgbImage(8, 4, Rgb{10, 20, 30});  // flat: exercises RLE
  trace.records.emplace_back(open);

  PushRecord push;
  push.t_ns = 456;
  push.session = 0;
  push.outcome = ingest::PushOutcome::kAccepted;
  push.sequence = 7;
  push.frame = RgbImage(3, 3);
  for (int y = 0; y < 3; ++y) {  // every pixel distinct: exercises the raw path
    for (int x = 0; x < 3; ++x) {
      push.frame.at(x, y) = Rgb{static_cast<std::uint8_t>(x * 40 + y),
                                static_cast<std::uint8_t>(y * 80), static_cast<std::uint8_t>(x)};
    }
  }
  trace.records.emplace_back(push);

  TickRecord tick;
  tick.t_ns = 789;
  TickEntry entry;
  entry.session = 0;
  entry.sequence = 7;
  entry.update.frame_index = 7;
  entry.update.airborne = true;
  entry.update.result.pose = pose::PoseId::kAirTuckHandsForward;
  entry.update.result.best_pose = pose::PoseId::kUnknown;
  entry.update.result.posterior = 0.123456789012345;
  entry.update.result.stage = pose::Stage::kInTheAir;
  entry.update.result.candidate_index = -1;
  core::ResolvedFault fault;
  fault.finding.rule = core::FaultRule::kFlightLegCarry;
  fault.finding.passed = true;
  fault.finding.evidence_frames = {5, 6, 7};
  fault.frame = 7;
  entry.update.resolved.push_back(fault);
  tick.entries.push_back(entry);
  trace.records.emplace_back(tick);

  CloseRecord close;
  close.t_ns = 1000;
  close.session = 0;
  close.evicted = true;
  close.discarded = 2;
  close.report.findings.push_back(fault.finding);
  trace.records.emplace_back(close);

  SummaryRecord summary;
  summary.pushed = 11;
  summary.delivered = 8;
  summary.dropped_oldest = 1;
  summary.discarded = 2;
  summary.ticks = 9;
  trace.records.emplace_back(summary);

  const std::string path = temp_path("roundtrip.sljtrace");
  save_trace(trace, path);
  const Trace loaded = load_trace(path);
  ASSERT_EQ(loaded.records.size(), trace.records.size());

  const auto& open2 = std::get<OpenRecord>(loaded.records[0]);
  EXPECT_EQ(open2.t_ns, 123);
  EXPECT_EQ(open2.config.queue_capacity, 5u);
  EXPECT_EQ(open2.config.policy, ingest::BackpressurePolicy::kRejectNewest);
  EXPECT_EQ(open2.config.decoder, core::StreamDecoder::kFiltering);
  EXPECT_TRUE(open2.config.use_tracker);
  EXPECT_EQ(open2.background, open.background);

  const auto& push2 = std::get<PushRecord>(loaded.records[1]);
  EXPECT_EQ(push2.sequence, 7u);
  EXPECT_EQ(push2.frame, push.frame);

  const auto& tick2 = std::get<TickRecord>(loaded.records[2]);
  ASSERT_EQ(tick2.entries.size(), 1u);
  EXPECT_EQ(tick2.entries[0].update.result.pose, pose::PoseId::kAirTuckHandsForward);
  EXPECT_EQ(tick2.entries[0].update.result.best_pose, pose::PoseId::kUnknown);
  EXPECT_EQ(tick2.entries[0].update.result.posterior, 0.123456789012345);  // bit-exact
  EXPECT_EQ(tick2.entries[0].update.result.candidate_index, -1);
  ASSERT_EQ(tick2.entries[0].update.resolved.size(), 1u);
  EXPECT_EQ(tick2.entries[0].update.resolved[0].finding.evidence_frames,
            (std::vector<int>{5, 6, 7}));

  const auto& close2 = std::get<CloseRecord>(loaded.records[3]);
  EXPECT_TRUE(close2.evicted);
  EXPECT_EQ(close2.discarded, 2u);
  ASSERT_EQ(close2.report.findings.size(), 1u);

  const auto& summary2 = std::get<SummaryRecord>(loaded.records[4]);
  EXPECT_EQ(summary2.pushed, 11u);
  EXPECT_EQ(summary2.ticks, 9u);
}

// ---- robustness: the fuzz surface ------------------------------------------

TEST(TraceFormat, RejectsBadMagicAndVersion) {
  const std::string path = temp_path("header.sljtrace");
  save_trace(Trace{}, path);
  const std::string good = read_file(path);

  for (std::size_t i = 0; i < 12; ++i) {  // magic + version bytes
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    write_file(path, bad);
    EXPECT_THROW(load_trace(path), std::runtime_error) << "header byte " << i;
  }
}

TEST(TraceFormat, EveryTruncationFailsCleanly) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = mini_clip(7, 4);
  const std::string base = temp_path("trunc_base.sljtrace");
  RecordSpec spec;
  spec.sessions = 1;
  spec.frames_per_session = 2;
  record_trace(base, classifier, clip, spec);
  const std::string good = read_file(base);
  ASSERT_GT(good.size(), 16u);

  const std::string path = temp_path("trunc.sljtrace");
  std::size_t rejected = 0;
  for (std::size_t len = 0; len < good.size(); ++len) {
    write_file(path, good.substr(0, len));
    // A cut at an exact record boundary legally loads a shorter trace; any
    // other cut must throw. Either way: no crash, no UB (ASan/UBSan job).
    try {
      load_trace(path);
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, good.size() / 2);
}

TEST(TraceFormat, EveryBitFlipFailsCleanlyOrLoads) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = mini_clip(9, 4);
  const std::string base = temp_path("flip_base.sljtrace");
  RecordSpec spec;
  spec.sessions = 1;
  spec.frames_per_session = 2;
  record_trace(base, classifier, clip, spec);
  const std::string good = read_file(base);

  const std::string path = temp_path("flip.sljtrace");
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0xff);
    write_file(path, bad);
    // Corrupt values may still parse (a flipped pixel byte is just a
    // different image); what is forbidden is UB or an uncontrolled throw.
    try {
      load_trace(path);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(TraceFormat, RejectsOversizedLengthPrefix) {
  const std::string path = temp_path("oversized.sljtrace");
  save_trace(Trace{}, path);
  std::string bytes = read_file(path);
  // Append a record claiming a 4 GiB payload: must be rejected from the
  // length prefix alone, before any allocation sized from it.
  const char huge[5] = {'\xff', '\xff', '\xff', '\xff', 1};
  bytes.append(huge, sizeof(huge));
  write_file(path, bytes);
  EXPECT_THROW(load_trace(path), std::runtime_error);

  // Same with a length that passes the cap but overruns the file.
  std::string lying = read_file(path);
  lying.resize(12);
  const char overrun[5] = {16, 0, 0, 0, 1};
  lying.append(overrun, sizeof(overrun));
  lying.push_back('\x00');  // 1 byte of payload instead of 16
  write_file(path, lying);
  EXPECT_THROW(load_trace(path), std::runtime_error);
}

TEST(TraceFormat, SkipsUnknownRecordTypes) {
  const std::string path = temp_path("unknown_type.sljtrace");
  Trace trace;
  SummaryRecord summary;
  summary.pushed = 3;
  trace.records.emplace_back(summary);
  save_trace(trace, path);

  std::string bytes = read_file(path);
  // Splice an unknown record type (99) with a 3-byte payload before the
  // summary, right after the header.
  const char unknown[8] = {3, 0, 0, 0, 99, 'x', 'y', 'z'};
  bytes.insert(12, unknown, sizeof(unknown));
  write_file(path, bytes);

  const Trace loaded = load_trace(path);  // forward compatible: no throw
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(std::get<SummaryRecord>(loaded.records[0]).pushed, 3u);
}

}  // namespace
}  // namespace slj::replay
