#include "synth/body_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace slj::synth {
namespace {

constexpr double deg(double d) { return d * 3.14159265358979323846 / 180.0; }

TEST(BodyDimensions, ScalesWithHeight) {
  const BodyDimensions small = BodyDimensions::for_height(1.20);
  const BodyDimensions tall = BodyDimensions::for_height(1.60);
  EXPECT_NEAR(tall.torso / small.torso, 1.60 / 1.20, 1e-9);
  EXPECT_NEAR(tall.thigh / small.thigh, 1.60 / 1.20, 1e-9);
  EXPECT_GT(small.torso, 0.0);
  EXPECT_GT(small.head_radius, 0.0);
}

TEST(BodyDimensions, SegmentsSumRoughlyToStature) {
  const BodyDimensions d = BodyDimensions::for_height(1.40);
  const double standing =
      d.thigh + d.shank + d.torso + d.neck + 2.0 * d.head_radius;
  EXPECT_NEAR(standing, 1.40 * 0.90, 0.10);  // legs+trunk+head ≈ stature minus foot height
}

TEST(ForwardKinematics, NeutralPoseIsUprightStack) {
  const BodyDimensions body = BodyDimensions::for_height(1.40);
  JointAngles neutral;  // all zero, ankle = pi/2
  const JointPositions j = forward_kinematics(body, neutral, {0.0, 0.8});
  // Torso straight up.
  EXPECT_NEAR(j.neck.x, 0.0, 1e-9);
  EXPECT_NEAR(j.neck.y, 0.8 + body.torso, 1e-9);
  EXPECT_GT(j.head_top.y, j.neck.y);
  // Legs straight down.
  EXPECT_NEAR(j.knee.x, 0.0, 1e-9);
  EXPECT_NEAR(j.knee.y, 0.8 - body.thigh, 1e-9);
  EXPECT_NEAR(j.ankle.y, 0.8 - body.thigh - body.shank, 1e-9);
  // Flat foot points forward (+x).
  EXPECT_GT(j.toe.x, j.ankle.x);
  EXPECT_NEAR(j.toe.y, j.ankle.y, 1e-9);
  // Arm hangs along the torso.
  EXPECT_NEAR(j.hand.x, 0.0, 1e-9);
  EXPECT_LT(j.hand.y, j.shoulder.y);
}

TEST(ForwardKinematics, PositiveShoulderSwingsArmForward) {
  const BodyDimensions body = BodyDimensions::for_height(1.40);
  JointAngles a;
  a.shoulder = deg(90);
  const JointPositions j = forward_kinematics(body, a, {0.0, 0.8});
  EXPECT_GT(j.hand.x, 0.1);                       // ahead of the body
  EXPECT_NEAR(j.hand.y, j.shoulder.y, 1e-9);      // horizontal arm
}

TEST(ForwardKinematics, NegativeShoulderSwingsArmBackward) {
  const BodyDimensions body = BodyDimensions::for_height(1.40);
  JointAngles a;
  a.shoulder = deg(-45);
  const JointPositions j = forward_kinematics(body, a, {0.0, 0.8});
  EXPECT_LT(j.hand.x, -0.05);
}

TEST(ForwardKinematics, TorsoLeanTiltsForward) {
  const BodyDimensions body = BodyDimensions::for_height(1.40);
  JointAngles a;
  a.torso_lean = deg(30);
  const JointPositions j = forward_kinematics(body, a, {0.0, 0.8});
  EXPECT_GT(j.neck.x, 0.1);       // neck ahead of pelvis
  EXPECT_LT(j.neck.y, 0.8 + body.torso);  // and lower than upright
}

TEST(ForwardKinematics, KneeFlexionFoldsShankBackward) {
  const BodyDimensions body = BodyDimensions::for_height(1.40);
  JointAngles a;
  a.knee = deg(90);
  const JointPositions j = forward_kinematics(body, a, {0.0, 0.8});
  // Thigh still straight down; shank horizontal pointing backward.
  EXPECT_NEAR(j.knee.x, 0.0, 1e-9);
  EXPECT_LT(j.ankle.x, -0.1);
  EXPECT_NEAR(j.ankle.y, j.knee.y, 1e-9);
}

TEST(ForwardKinematics, HipFlexionLiftsThigh) {
  const BodyDimensions body = BodyDimensions::for_height(1.40);
  JointAngles a;
  a.hip = deg(90);
  const JointPositions j = forward_kinematics(body, a, {0.0, 0.8});
  EXPECT_GT(j.knee.x, 0.1);
  EXPECT_NEAR(j.knee.y, 0.8, 1e-9);
}

TEST(ForwardKinematics, ChestLiesOnTorso) {
  const BodyDimensions body = BodyDimensions::for_height(1.40);
  JointAngles a;
  a.torso_lean = deg(20);
  const JointPositions j = forward_kinematics(body, a, {0.3, 0.8});
  // Chest is 3/4 of the way pelvis→neck.
  const PointF expect = j.pelvis + (j.neck - j.pelvis) * 0.75;
  EXPECT_NEAR(j.chest.x, expect.x, 1e-9);
  EXPECT_NEAR(j.chest.y, expect.y, 1e-9);
}

TEST(GroundContact, NeutralStandingPelvisHeightIsLegLength) {
  const BodyDimensions body = BodyDimensions::for_height(1.40);
  JointAngles neutral;
  const double h = pelvis_height_for_ground_contact(body, neutral);
  // Toe and ankle at the same y for a flat foot; lowest point includes the
  // ankle pad (foot radius).
  EXPECT_NEAR(h, body.thigh + body.shank + body.foot_radius, 1e-9);
}

TEST(GroundContact, CrouchLowersPelvis) {
  const BodyDimensions body = BodyDimensions::for_height(1.40);
  JointAngles neutral;
  JointAngles crouch;
  crouch.hip = deg(60);
  crouch.knee = deg(80);
  EXPECT_LT(pelvis_height_for_ground_contact(body, crouch),
            pelvis_height_for_ground_contact(body, neutral));
}

TEST(GroundContact, LowestFootOffsetIsNegativeBelowPelvis) {
  const BodyDimensions body = BodyDimensions::for_height(1.40);
  JointAngles neutral;
  EXPECT_LT(lowest_foot_offset(body, neutral), 0.0);
}

}  // namespace
}  // namespace slj::synth
