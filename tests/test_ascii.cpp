#include "imaging/ascii.hpp"

#include <gtest/gtest.h>

namespace slj {
namespace {

TEST(AsciiRender, EmptyImageGivesEmptyString) {
  EXPECT_TRUE(ascii_render(BinaryImage()).empty());
}

TEST(AsciiRender, SmallImageRendersOneCharPerPixelColumn) {
  BinaryImage img(4, 2, 0);
  img.at(0, 0) = 1;
  img.at(3, 0) = 1;
  const std::string out = ascii_render(img, 72);
  // 4 columns fit in 72, so sx = 1, sy = 2 → a single row.
  EXPECT_EQ(out, "#..#\n");
}

TEST(AsciiRender, DownsamplesWideImages) {
  BinaryImage img(144, 10, 1);
  const std::string out = ascii_render(img, 72);
  const std::size_t first_line = out.find('\n');
  EXPECT_LE(first_line, 72u);
  // All cells are on.
  for (const char c : out) {
    if (c != '\n') EXPECT_EQ(c, '#');
  }
}

TEST(AsciiRenderOverlay, MarksSkeletonInsideSilhouette) {
  BinaryImage sil(4, 2, 1);
  BinaryImage skel(4, 2, 0);
  skel.at(1, 0) = 1;
  const std::string out = ascii_render_overlay(sil, skel, 72);
  EXPECT_EQ(out, "#*##\n");
}

TEST(AsciiRenderOverlay, MarksSkeletonOutsideSilhouetteDifferently) {
  BinaryImage sil(3, 2, 0);
  BinaryImage skel(3, 2, 0);
  skel.at(2, 0) = 1;
  const std::string out = ascii_render_overlay(sil, skel, 72);
  EXPECT_EQ(out, "..+\n");
}

}  // namespace
}  // namespace slj
