#include "pose/classifier.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace slj::pose {
namespace {

/// Builds a candidate whose parts sit in the given areas (occupancy derived
/// from the part areas).
FeatureCandidate make_candidate(const AreaEncoder& enc, int head, int chest, int hand, int knee,
                                int foot) {
  FeatureCandidate c;
  c.features[Part::kHead] = head;
  c.features[Part::kChest] = chest;
  c.features[Part::kHand] = hand;
  c.features[Part::kKnee] = knee;
  c.features[Part::kFoot] = foot;
  for (int i = 0; i < kPartCount; ++i) c.nodes[static_cast<std::size_t>(i)] = i;  // all assigned
  c.occupancy.assign(static_cast<std::size_t>(enc.num_areas()), 0);
  for (const int a : c.features.areas) {
    if (a < enc.num_areas()) c.occupancy[static_cast<std::size_t>(a)] = 1;
  }
  return c;
}

/// Trains a classifier on two synthetic poses with distinct hand areas:
/// "standing & hands swung forward" (hand ahead = 0) vs "standing & hands
/// swung backward" (hand behind = 4).
PoseDbnClassifier trained_two_pose(ClassifierConfig cfg = {}) {
  PoseDbnClassifier clf(cfg);
  const AreaEncoder& enc = clf.encoder();
  const FeatureCandidate fwd = make_candidate(enc, 2, 2, 0, 6, 6);
  const FeatureCandidate back = make_candidate(enc, 2, 2, 4, 6, 6);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<std::pair<PoseId, FeatureCandidate>> clip;
    for (int i = 0; i < 5; ++i) clip.emplace_back(PoseId::kStandHandsForward, fwd);
    for (int i = 0; i < 5; ++i) clip.emplace_back(PoseId::kStandHandsBackward, back);
    clf.observe_sequence(clip);
  }
  return clf;
}

TEST(Classifier, ConfigMismatchChecksNothingHere) {
  // Smoke: construction with non-default areas works.
  ClassifierConfig cfg;
  cfg.num_areas = 12;
  PoseDbnClassifier clf(cfg);
  EXPECT_EQ(clf.encoder().num_areas(), 12);
}

TEST(Classifier, LikelihoodFavoursTrainedFeatureVector) {
  const PoseDbnClassifier clf = trained_two_pose();
  const AreaEncoder& enc = clf.encoder();
  const FeatureCandidate fwd = make_candidate(enc, 2, 2, 0, 6, 6);
  EXPECT_GT(clf.log_likelihood(PoseId::kStandHandsForward, fwd),
            clf.log_likelihood(PoseId::kStandHandsBackward, fwd));
}

TEST(Classifier, PriorReflectsTrainingFrequencies) {
  const PoseDbnClassifier clf = trained_two_pose();
  EXPECT_NEAR(clf.prior_prob(PoseId::kStandHandsForward),
              clf.prior_prob(PoseId::kStandHandsBackward), 1e-9);
  EXPECT_GT(clf.prior_prob(PoseId::kStandHandsForward),
            clf.prior_prob(PoseId::kAirTuckHandsForward));
  EXPECT_DOUBLE_EQ(clf.training_frames(), 200.0);
}

TEST(Classifier, TransitionLearnsSelfLoopAndSwitch) {
  const PoseDbnClassifier clf = trained_two_pose();
  const double self_loop = clf.transition_prob(
      PoseId::kStandHandsForward, PoseId::kStandHandsForward, Stage::kBeforeJumping);
  const double cross = clf.transition_prob(
      PoseId::kAirTuckHandsForward, PoseId::kStandHandsForward, Stage::kBeforeJumping);
  EXPECT_GT(self_loop, 0.4);
  EXPECT_LT(cross, 0.05);
}

TEST(Classifier, ClassifiesTrainedPoses) {
  const PoseDbnClassifier clf = trained_two_pose();
  const AreaEncoder& enc = clf.encoder();
  auto state = clf.initial_state();
  const FrameResult r1 =
      clf.classify({make_candidate(enc, 2, 2, 0, 6, 6)}, false, state);
  EXPECT_EQ(r1.pose, PoseId::kStandHandsForward);
  const FrameResult r2 =
      clf.classify({make_candidate(enc, 2, 2, 4, 6, 6)}, false, state);
  EXPECT_EQ(r2.pose, PoseId::kStandHandsBackward);
}

TEST(Classifier, EmptyCandidatesGiveUnknown) {
  const PoseDbnClassifier clf = trained_two_pose();
  auto state = clf.initial_state();
  const FrameResult r = clf.classify({}, false, state);
  EXPECT_EQ(r.pose, PoseId::kUnknown);
}

TEST(Classifier, UnknownCarriesLastRecognizedPose) {
  ClassifierConfig cfg;
  cfg.carry_last_recognized = true;
  PoseDbnClassifier clf = trained_two_pose(cfg);
  auto state = clf.initial_state();
  clf.classify({make_candidate(clf.encoder(), 2, 2, 4, 6, 6)}, false, state);
  EXPECT_EQ(state.prev, PoseId::kStandHandsBackward);
  clf.classify({}, false, state);  // Unknown frame
  EXPECT_EQ(state.prev, PoseId::kStandHandsBackward);  // carried
  EXPECT_TRUE(state.prev_known);
}

TEST(Classifier, UnknownWithoutCarryMarksPrevUnknown) {
  ClassifierConfig cfg;
  cfg.carry_last_recognized = false;
  PoseDbnClassifier clf = trained_two_pose(cfg);
  auto state = clf.initial_state();
  clf.classify({}, false, state);
  EXPECT_FALSE(state.prev_known);
}

TEST(Classifier, StageNeverRegressesAndFlagGatesAir) {
  const PoseDbnClassifier clf = trained_two_pose();
  auto state = clf.initial_state();
  EXPECT_EQ(state.stage, Stage::kBeforeJumping);
  // Airborne observation forces the stage to "in the air".
  clf.classify({make_candidate(clf.encoder(), 2, 2, 0, 6, 6)}, true, state);
  EXPECT_EQ(state.stage, Stage::kInTheAir);
  EXPECT_TRUE(state.flight_seen);
  // Grounded after flight → landing.
  clf.classify({make_candidate(clf.encoder(), 2, 2, 0, 6, 6)}, false, state);
  EXPECT_EQ(state.stage, Stage::kLanding);
}

TEST(Classifier, StaticBnModeIgnoresTemporalState) {
  ClassifierConfig cfg;
  cfg.temporal = TemporalMode::kStaticBn;
  PoseDbnClassifier clf = trained_two_pose(cfg);
  const AreaEncoder& enc = clf.encoder();
  // Run the BACKWARD pose first; with no temporal links the forward pose
  // still wins immediately afterwards on its own evidence.
  auto state = clf.initial_state();
  clf.classify({make_candidate(enc, 2, 2, 4, 6, 6)}, false, state);
  const FrameResult r = clf.classify({make_candidate(enc, 2, 2, 0, 6, 6)}, false, state);
  EXPECT_EQ(r.pose, PoseId::kStandHandsForward);
}

TEST(Classifier, SequenceClassificationMatchesStepwise) {
  const PoseDbnClassifier clf = trained_two_pose();
  const AreaEncoder& enc = clf.encoder();
  std::vector<std::vector<FeatureCandidate>> clip{
      {make_candidate(enc, 2, 2, 0, 6, 6)},
      {make_candidate(enc, 2, 2, 0, 6, 6)},
      {make_candidate(enc, 2, 2, 4, 6, 6)},
  };
  const std::vector<bool> airborne{false, false, false};
  const auto seq = clf.classify_sequence(clip, airborne);
  ASSERT_EQ(seq.size(), 3u);
  auto state = clf.initial_state();
  for (std::size_t i = 0; i < clip.size(); ++i) {
    const FrameResult r = clf.classify(clip[i], airborne[i], state);
    EXPECT_EQ(seq[i].pose, r.pose);
  }
}

TEST(Classifier, SequenceLengthMismatchThrows) {
  const PoseDbnClassifier clf = trained_two_pose();
  EXPECT_THROW(clf.classify_sequence({{}, {}}, {false}), std::invalid_argument);
}

TEST(Classifier, AirborneCptLearnsFlagDistribution) {
  PoseDbnClassifier clf;
  const FeatureCandidate c = make_candidate(clf.encoder(), 2, 2, 0, 6, 6);
  for (int i = 0; i < 10; ++i) {
    clf.observe(PoseId::kAirTuckHandsForward, c, PoseId::kAirTuckHandsForward,
                Stage::kInTheAir, true);
    clf.observe(PoseId::kStandHandsForward, c, PoseId::kStandHandsForward,
                Stage::kBeforeJumping, false);
  }
  EXPECT_GT(clf.airborne_prob(true, Stage::kInTheAir), 0.8);
  EXPECT_GT(clf.airborne_prob(false, Stage::kBeforeJumping), 0.8);
}

TEST(Classifier, ThPoseRulePrefersRareClearingPoseOverDominant) {
  // Train heavily imbalanced: dominant appears 10x more often than the
  // rare pose, with only mildly different features.
  ClassifierConfig cfg;
  cfg.th_pose = 0.25;
  PoseDbnClassifier clf(cfg);
  const AreaEncoder& enc = clf.encoder();
  const FeatureCandidate dom = make_candidate(enc, 2, 2, 0, 6, 6);
  const FeatureCandidate rare = make_candidate(enc, 2, 2, 1, 6, 6);
  for (int i = 0; i < 100; ++i) {
    clf.observe(cfg.dominant_pose, dom, cfg.dominant_pose, Stage::kBeforeJumping, false);
  }
  for (int i = 0; i < 10; ++i) {
    clf.observe(PoseId::kStandHandsUp, rare, cfg.dominant_pose, Stage::kBeforeJumping, false);
  }
  auto state = clf.initial_state();
  state.prev = cfg.dominant_pose;
  const FrameResult r = clf.classify({rare}, false, state);
  EXPECT_EQ(r.pose, PoseId::kStandHandsUp);
  EXPECT_GT(r.posterior, cfg.th_pose);
}

TEST(Classifier, BuildPoseNetworkHasFig7Structure) {
  const PoseDbnClassifier clf = trained_two_pose();
  const bayes::Network net = clf.build_pose_network(PoseId::kStandHandsForward);
  // 1 root + 5 parts + 8 areas = 14 nodes.
  EXPECT_EQ(net.node_count(), 14);
  EXPECT_TRUE(net.find("Head").has_value());
  EXPECT_TRUE(net.find("Area I").has_value());
  EXPECT_TRUE(net.find("Area VIII").has_value());
  // Root has no parents; parts have 1; areas have 5.
  EXPECT_TRUE(net.parents(0).empty());
  EXPECT_EQ(net.parents(*net.find("Head")).size(), 1u);
  EXPECT_EQ(net.parents(*net.find("Area I")).size(), 5u);
}

TEST(Classifier, PoseNetworkPosteriorRespondsToEvidence) {
  const PoseDbnClassifier clf = trained_two_pose();
  const bayes::Network net = clf.build_pose_network(PoseId::kStandHandsForward);
  // Observe the Hand part in the forward area (state 0) vs backward (4):
  bayes::Assignment evidence(static_cast<std::size_t>(net.node_count()), bayes::kUnobserved);
  const int hand = *net.find("Hand");
  evidence[static_cast<std::size_t>(hand)] = 0;
  const double p_fwd = net.posterior(0, evidence)[1];
  evidence[static_cast<std::size_t>(hand)] = 4;
  const double p_back = net.posterior(0, evidence)[1];
  EXPECT_GT(p_fwd, p_back);
}

TEST(Classifier, DbnSliceHasTemporalNodes) {
  const PoseDbnClassifier clf = trained_two_pose();
  const bayes::Network net = clf.build_dbn_slice();
  EXPECT_TRUE(net.find("PreviousPose").has_value());
  EXPECT_TRUE(net.find("JumpingStage").has_value());
  EXPECT_TRUE(net.find("Pose").has_value());
  const int pose_node = *net.find("Pose");
  EXPECT_EQ(net.parents(pose_node).size(), 2u);
  // 3 temporal + 5 parts + 8 areas = 16 nodes.
  EXPECT_EQ(net.node_count(), 16);
}

}  // namespace
}  // namespace slj::pose
