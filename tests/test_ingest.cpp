// Ingest-plane tests: backpressure policy semantics, rate-limiter token
// accounting, idle-timeout eviction, drop accounting, and — the acceptance
// bar — batch parity: StreamUpdates delivered through the full
// push -> queue -> drain -> tick -> sink plane must be identical to a direct
// StreamSession::push_frame replay whenever no frame is dropped. The
// multi-producer stress test is the suite's TSan target (see scripts/ci.sh
// --tsan-stress): concurrent producers against small kBlock queues, with
// per-session ordering and parity checked after the dust settles.
#include "ingest/ingest_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/stream_engine.hpp"
#include "synth/dataset.hpp"

namespace slj::ingest {
namespace {

using namespace std::chrono_literals;

synth::Clip make_clip(std::uint32_t seed, int frame_count = 16) {
  synth::ClipSpec spec;
  spec.seed = seed;
  spec.frame_count = frame_count;
  return synth::generate_clip(spec);
}

/// A frame whose top-left pixel encodes `tag`, so queue tests can tell
/// exactly which frames survived a shedding policy.
RgbImage tagged_frame(std::uint8_t tag) {
  RgbImage frame(4, 4, Rgb{0, 0, 0});
  frame.at(0, 0) = Rgb{tag, tag, tag};
  return frame;
}

std::uint8_t tag_of(const RgbImage& frame) { return frame.at(0, 0).r; }

Clock::time_point at_ms(std::int64_t ms) {
  return Clock::time_point{std::chrono::milliseconds(ms)};
}

/// Manual clock injectable through IngestRouter::Config::clock; safe to
/// advance from the test thread while producers/scheduler read it.
struct ManualClock {
  std::atomic<std::int64_t> nanos{0};
  std::function<Clock::time_point()> fn() {
    return [this] { return Clock::time_point{Clock::duration{nanos.load()}}; };
  }
  void advance(Clock::duration d) { nanos.fetch_add(d.count()); }
};

// ---- RateLimiter -----------------------------------------------------------

TEST(RateLimiter, TokenAccountingIsDeterministic) {
  RateLimiterConfig config;
  config.tokens_per_second = 2.0;
  config.burst = 2.0;
  RateLimiter limiter(config, at_ms(0));

  // Bucket starts full at `burst`.
  EXPECT_DOUBLE_EQ(limiter.tokens(at_ms(0)), 2.0);
  EXPECT_TRUE(limiter.try_acquire(at_ms(0)));
  EXPECT_TRUE(limiter.try_acquire(at_ms(0)));
  EXPECT_FALSE(limiter.try_acquire(at_ms(0)));  // empty

  // 500 ms at 2 tokens/s refills exactly one token.
  EXPECT_DOUBLE_EQ(limiter.tokens(at_ms(500)), 1.0);
  EXPECT_TRUE(limiter.try_acquire(at_ms(500)));
  EXPECT_FALSE(limiter.try_acquire(at_ms(500)));

  // A long idle spell caps the bucket at `burst`, not elapsed * rate.
  EXPECT_DOUBLE_EQ(limiter.tokens(at_ms(60500)), 2.0);
  EXPECT_TRUE(limiter.try_acquire(at_ms(60500)));
  EXPECT_TRUE(limiter.try_acquire(at_ms(60500)));
  EXPECT_FALSE(limiter.try_acquire(at_ms(60500)));
}

TEST(RateLimiter, DisabledLimiterAdmitsEverything) {
  RateLimiter limiter({}, at_ms(0));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(limiter.try_acquire(at_ms(0)));
}

TEST(RateLimiter, BackwardsClockNeverDoubleCreditsRefill) {
  RateLimiterConfig config;
  config.tokens_per_second = 1.0;
  config.burst = 1.0;
  RateLimiter limiter(config, at_ms(10000));
  EXPECT_TRUE(limiter.try_acquire(at_ms(10000)));  // bucket empty, mark at t=10s

  // A backwards step must not rewind the refill mark: returning to t=10s
  // afterwards means zero wall time has passed, so no token exists.
  EXPECT_FALSE(limiter.try_acquire(at_ms(5000)));
  EXPECT_FALSE(limiter.try_acquire(at_ms(10000)));
  EXPECT_TRUE(limiter.try_acquire(at_ms(11000)));  // one real second later
}

TEST(RateLimiter, RejectsInvalidConfig) {
  RateLimiterConfig negative;
  negative.tokens_per_second = -1.0;
  EXPECT_THROW(RateLimiter{negative}, std::invalid_argument);
  RateLimiterConfig zero_burst;
  zero_burst.tokens_per_second = 10.0;
  zero_burst.burst = 0.5;
  EXPECT_THROW(RateLimiter{zero_burst}, std::invalid_argument);
}

// ---- FrameQueue ------------------------------------------------------------

TEST(FrameQueue, DropOldestShedsTheStalestFrame) {
  FrameQueueConfig config;
  config.capacity = 2;
  config.policy = BackpressurePolicy::kDropOldest;
  FrameQueue queue(config);

  EXPECT_EQ(queue.push(tagged_frame(10), at_ms(0)), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(tagged_frame(11), at_ms(1)), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(tagged_frame(12), at_ms(2)), PushOutcome::kReplacedOldest);
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.admitted(), 3u);

  // Frame 10 was shed; 11 and 12 drain in admission order with their
  // original sequence numbers and enqueue stamps.
  PendingFrame out;
  ASSERT_TRUE(queue.pop_into(out));
  EXPECT_EQ(tag_of(out.frame), 11);
  EXPECT_EQ(out.sequence, 1u);
  EXPECT_EQ(out.enqueued_at, at_ms(1));
  ASSERT_TRUE(queue.pop_into(out));
  EXPECT_EQ(tag_of(out.frame), 12);
  EXPECT_EQ(out.sequence, 2u);
  EXPECT_FALSE(queue.pop_into(out));
}

TEST(FrameQueue, RejectNewestPreservesQueuedHistory) {
  FrameQueueConfig config;
  config.capacity = 2;
  config.policy = BackpressurePolicy::kRejectNewest;
  FrameQueue queue(config);

  EXPECT_EQ(queue.push(tagged_frame(20), at_ms(0)), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(tagged_frame(21), at_ms(0)), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(tagged_frame(22), at_ms(0)), PushOutcome::kRejected);
  EXPECT_EQ(queue.admitted(), 2u);  // the rejected frame never got a sequence

  PendingFrame out;
  ASSERT_TRUE(queue.pop_into(out));
  EXPECT_EQ(tag_of(out.frame), 20);
  ASSERT_TRUE(queue.pop_into(out));
  EXPECT_EQ(tag_of(out.frame), 21);
}

TEST(FrameQueue, BlockWaitsForSpaceAndWakesOnPop) {
  FrameQueueConfig config;
  config.capacity = 1;
  config.policy = BackpressurePolicy::kBlock;
  FrameQueue queue(config);
  EXPECT_EQ(queue.push(tagged_frame(1), at_ms(0)), PushOutcome::kAccepted);

  std::atomic<bool> second_admitted{false};
  std::thread producer([&] {
    const PushOutcome outcome = queue.push(tagged_frame(2), at_ms(1));
    EXPECT_EQ(outcome, PushOutcome::kAccepted);
    second_admitted.store(true);
  });

  // The producer is parked on the full ring: nothing is admitted until the
  // consumer makes space.
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(second_admitted.load());
  EXPECT_EQ(queue.depth(), 1u);

  PendingFrame out;
  ASSERT_TRUE(queue.pop_into(out));
  EXPECT_EQ(tag_of(out.frame), 1);
  producer.join();
  EXPECT_TRUE(second_admitted.load());
  ASSERT_TRUE(queue.pop_into(out));
  EXPECT_EQ(tag_of(out.frame), 2);
}

TEST(FrameQueue, CloseWakesBlockedProducersAndRefusesPushes) {
  FrameQueueConfig config;
  config.capacity = 1;
  config.policy = BackpressurePolicy::kBlock;
  FrameQueue queue(config);
  EXPECT_EQ(queue.push(tagged_frame(1), at_ms(0)), PushOutcome::kAccepted);

  std::thread producer([&] {
    EXPECT_EQ(queue.push(tagged_frame(2), at_ms(1)), PushOutcome::kClosed);
  });
  std::this_thread::sleep_for(10ms);
  queue.close();
  producer.join();

  EXPECT_EQ(queue.push(tagged_frame(3), at_ms(2)), PushOutcome::kClosed);
  // Queued history still drains after close.
  PendingFrame out;
  ASSERT_TRUE(queue.pop_into(out));
  EXPECT_EQ(tag_of(out.frame), 1);
  EXPECT_FALSE(queue.pop_into(out));
}

TEST(FrameQueue, BackToBackPopsWakeEveryBlockedProducer) {
  FrameQueueConfig config;
  config.capacity = 2;
  config.policy = BackpressurePolicy::kBlock;
  FrameQueue queue(config);
  EXPECT_EQ(queue.push(tagged_frame(1), at_ms(0)), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(tagged_frame(2), at_ms(0)), PushOutcome::kAccepted);

  // Two producers park on the full ring.
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      EXPECT_EQ(queue.push(tagged_frame(static_cast<std::uint8_t>(3 + p)), at_ms(1)),
                PushOutcome::kAccepted);
    });
  }
  std::this_thread::sleep_for(20ms);

  // Two back-to-back pops free two slots; an edge-triggered (full->not-full
  // only) notify would wake just one producer and strand the other on a
  // ring with free space. Both must complete.
  PendingFrame out;
  ASSERT_TRUE(queue.pop_into(out));
  ASSERT_TRUE(queue.pop_into(out));
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (queue.admitted() < 4 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  const bool both_admitted = queue.admitted() == 4;
  if (!both_admitted) queue.close();  // rescue the stranded producer before join
  for (std::thread& t : producers) t.join();
  EXPECT_TRUE(both_admitted) << "a blocked producer was never woken";
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(FrameQueue, RateLimiterGatesAdmission) {
  FrameQueueConfig config;
  config.capacity = 8;
  config.rate.tokens_per_second = 10.0;  // one token per 100 ms
  config.rate.burst = 2.0;
  FrameQueue queue(config);

  EXPECT_EQ(queue.push(tagged_frame(1), at_ms(0)), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(tagged_frame(2), at_ms(0)), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(tagged_frame(3), at_ms(0)), PushOutcome::kRateLimited);
  EXPECT_EQ(queue.push(tagged_frame(4), at_ms(100)), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(tagged_frame(5), at_ms(100)), PushOutcome::kRateLimited);
  EXPECT_EQ(queue.depth(), 3u);
}

TEST(FrameQueue, RejectsZeroCapacity) {
  FrameQueueConfig config;
  config.capacity = 0;
  EXPECT_THROW(FrameQueue{config}, std::invalid_argument);
}

TEST(FrameQueue, CloseWakesEveryBlockedProducerAtOnce) {
  FrameQueueConfig config;
  config.capacity = 1;
  config.policy = BackpressurePolicy::kBlock;
  FrameQueue queue(config);
  EXPECT_EQ(queue.push(tagged_frame(1), at_ms(0)), PushOutcome::kAccepted);

  // Four producers park on the same full slot; close() must wake them all
  // (notify_one here would strand three threads forever).
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      EXPECT_EQ(queue.push(tagged_frame(static_cast<std::uint8_t>(10 + p)), at_ms(1)),
                PushOutcome::kClosed);
    });
  }
  std::this_thread::sleep_for(20ms);
  queue.close();
  for (std::thread& t : producers) t.join();

  EXPECT_TRUE(queue.closed());
  // Only the pre-close frame survives.
  PendingFrame out;
  ASSERT_TRUE(queue.pop_into(out));
  EXPECT_EQ(tag_of(out.frame), 1);
  EXPECT_FALSE(queue.pop_into(out));
  EXPECT_EQ(queue.admitted(), 1u);
}

TEST(FrameQueue, ConcurrentPushesRacingCloseAccountExactly) {
  // Producers race a close() landing mid-stream. Whatever the interleaving,
  // the accounting must balance: every push returns kAccepted or kClosed,
  // admitted() equals the accepted count, and exactly that many frames
  // drain afterwards — no frame is both refused and enqueued, none vanish.
  FrameQueueConfig config;
  config.capacity = 64;  // roomy: rarely fills before the close lands
  config.policy = BackpressurePolicy::kBlock;  // kAccepted/kClosed are the only outcomes
  FrameQueue queue(config);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 32;
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        const PushOutcome outcome = queue.push(tagged_frame(7), at_ms(i));
        if (outcome == PushOutcome::kAccepted) {
          accepted.fetch_add(1);
        } else {
          ASSERT_EQ(outcome, PushOutcome::kClosed);
        }
      }
    });
  }
  queue.close();  // races the pushes by design
  for (std::thread& t : producers) t.join();

  EXPECT_EQ(queue.admitted(), static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(queue.depth(), static_cast<std::size_t>(accepted.load()));
  PendingFrame out;
  std::uint64_t drained = 0;
  std::uint64_t last_sequence = 0;
  while (queue.pop_into(out)) {
    // Sequences stay strictly increasing across the close boundary.
    if (drained > 0) EXPECT_GT(out.sequence, last_sequence);
    last_sequence = out.sequence;
    ++drained;
  }
  EXPECT_EQ(drained, static_cast<std::uint64_t>(accepted.load()));
}

// ---- LatencyHistogram ------------------------------------------------------

TEST(LatencyHistogram, QuantilesCarryAtMostOneOctaveOfError) {
  LatencyHistogram histogram;
  EXPECT_DOUBLE_EQ(histogram.quantile_ms(0.5), 0.0);  // empty

  // 100 samples at ~3 ms, 1 outlier at ~100 ms.
  for (int i = 0; i < 100; ++i) histogram.record(3ms);
  histogram.record(100ms);
  EXPECT_EQ(histogram.count(), 101u);
  EXPECT_DOUBLE_EQ(histogram.max_ms(), 100.0);
  // 3 ms lands in the [2048, 4096) µs bucket.
  EXPECT_GE(histogram.quantile_ms(0.50), 2.0);
  EXPECT_LE(histogram.quantile_ms(0.50), 4.1);
  // p99 is still inside the 3 ms mass; p100 reaches the outlier's bucket.
  EXPECT_LE(histogram.quantile_ms(0.99), 4.1);
  EXPECT_GE(histogram.quantile_ms(1.0), 64.0);
}

// ---- IngestRouter ----------------------------------------------------------

TEST(IngestRouter, DrainTakesAtMostOneFramePerSessionInIdOrder) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(3, 4);
  core::StreamManager manager(classifier);
  ManualClock clock;
  IngestRouter::Config config;
  config.clock = clock.fn();
  IngestRouter router(manager, config);

  const int a = router.open(clip.background);
  const int b = router.open(clip.background);
  EXPECT_EQ(router.push(a, clip.frames[0]), PushOutcome::kAccepted);
  EXPECT_EQ(router.push(a, clip.frames[1]), PushOutcome::kAccepted);
  EXPECT_EQ(router.push(a, clip.frames[2]), PushOutcome::kAccepted);
  EXPECT_EQ(router.push(b, clip.frames[0]), PushOutcome::kAccepted);
  EXPECT_EQ(router.total_depth(), 4u);

  DrainBatch batch;
  ASSERT_EQ(router.drain(batch), 2u);  // one frame per session
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.feeds[0].session, a);
  EXPECT_EQ(batch.feeds[1].session, b);
  EXPECT_EQ(batch.pending(0).sequence, 0u);
  EXPECT_EQ(batch.feeds[0].frame, &batch.pending(0).frame);
  EXPECT_EQ(router.depth(a), 2u);
  EXPECT_EQ(router.depth(b), 0u);

  ASSERT_EQ(router.drain(batch), 1u);  // only a has frames left
  EXPECT_EQ(batch.feeds[0].session, a);
  EXPECT_EQ(batch.pending(0).sequence, 1u);
  router.close(a);
  router.close(b);
}

TEST(IngestRouter, UnknownIdsThrowAndClosedSessionsRefuseQuietly) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(5, 4);
  core::StreamManager manager(classifier);
  IngestRouter router(manager);

  EXPECT_THROW(router.push(0, clip.frames[0]), std::invalid_argument);
  const int id = router.open(clip.background);
  EXPECT_THROW(router.push(id + 1, clip.frames[0]), std::invalid_argument);
  EXPECT_THROW(router.depth(id + 1), std::invalid_argument);

  EXPECT_EQ(router.push(id, clip.frames[0]), PushOutcome::kAccepted);
  std::uint64_t discarded = 0;
  router.close(id, &discarded);
  EXPECT_EQ(discarded, 1u);  // the queued frame was dropped with the session
  EXPECT_EQ(router.snapshot().discarded, 1u);  // ...and metered, so books balance
  EXPECT_EQ(router.open_sessions(), 0u);
  // A producer racing the close gets a refusal, not an exception.
  EXPECT_EQ(router.push(id, clip.frames[0]), PushOutcome::kClosed);
  EXPECT_THROW(router.close(id), std::invalid_argument);
}

TEST(IngestRouter, SealRefusesPushesButKeepsFramesDrainable) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(7, 4);
  core::StreamManager manager(classifier);
  IngestRouter router(manager);

  const int id = router.open(clip.background);
  EXPECT_EQ(router.push(id, clip.frames[0]), PushOutcome::kAccepted);
  router.seal(id);
  EXPECT_EQ(router.push(id, clip.frames[1]), PushOutcome::kClosed);
  DrainBatch batch;
  EXPECT_EQ(router.drain(batch), 1u);  // the admitted frame still drains
  router.close(id);
}

TEST(IngestRouter, IdleTimeoutCollectsOnlySilentDrainedSessions) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(9, 4);
  core::StreamManager manager(classifier);
  ManualClock clock;
  IngestRouter::Config config;
  config.clock = clock.fn();
  config.session.idle_timeout = 100ms;
  IngestRouter router(manager, config);

  const int idle = router.open(clip.background);
  const int busy = router.open(clip.background);
  IngestSessionConfig immortal;
  const int forever = router.open(clip.background, immortal);  // no timeout

  EXPECT_EQ(router.push(idle, clip.frames[0]), PushOutcome::kAccepted);
  EXPECT_EQ(router.push(busy, clip.frames[0]), PushOutcome::kAccepted);
  DrainBatch batch;
  EXPECT_EQ(router.drain(batch), 2u);

  std::vector<int> evictable;
  clock.advance(50ms);
  router.collect_idle(evictable);
  EXPECT_TRUE(evictable.empty());  // within the timeout

  clock.advance(100ms);
  EXPECT_EQ(router.push(busy, clip.frames[1]), PushOutcome::kAccepted);  // activity
  router.collect_idle(evictable);
  // `idle` timed out; `busy` just pushed (and has a queued frame); `forever`
  // opted out of eviction.
  ASSERT_EQ(evictable.size(), 1u);
  EXPECT_EQ(evictable[0], idle);

  // A queued frame alone also shields a silent session: drain first.
  evictable.clear();
  clock.advance(200ms);
  router.collect_idle(evictable);
  EXPECT_EQ(evictable.size(), 1u);  // still just `idle`: busy has depth 1
  for (const int id : {idle, busy, forever}) router.close(id);
}

TEST(IngestRouter, SnapshotAccountsDropsByPolicyExactly) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(11, 4);
  core::StreamManager manager(classifier);
  IngestRouter router(manager);

  IngestSessionConfig dropping;
  dropping.queue.capacity = 2;
  dropping.queue.policy = BackpressurePolicy::kDropOldest;
  IngestSessionConfig rejecting;
  rejecting.queue.capacity = 2;
  rejecting.queue.policy = BackpressurePolicy::kRejectNewest;
  IngestSessionConfig limited;
  limited.queue.capacity = 8;
  limited.queue.rate.tokens_per_second = 1e-6;  // effectively one-shot
  limited.queue.rate.burst = 1.0;

  const int d = router.open(clip.background, dropping);
  const int r = router.open(clip.background, rejecting);
  const int l = router.open(clip.background, limited);
  for (int i = 0; i < 4; ++i) {
    router.push(d, clip.frames[0]);
    router.push(r, clip.frames[0]);
    router.push(l, clip.frames[0]);
  }

  const IngestMetricsSnapshot snap = router.snapshot();
  EXPECT_EQ(snap.open_sessions, 3u);
  EXPECT_EQ(snap.pushed, 4u + 2u + 1u);  // admitted: all 4, first 2, first 1
  EXPECT_EQ(snap.dropped_oldest, 2u);
  EXPECT_EQ(snap.rejected, 2u);
  EXPECT_EQ(snap.rate_limited, 3u);
  EXPECT_EQ(snap.queue_depth, 2u + 2u + 1u);
  ASSERT_EQ(snap.sessions.size(), 3u);
  EXPECT_EQ(snap.sessions[0].dropped_oldest, 2u);
  EXPECT_STREQ(snap.sessions[0].policy, "drop-oldest");
  EXPECT_EQ(snap.sessions[1].rejected, 2u);
  EXPECT_STREQ(snap.sessions[1].policy, "reject-newest");
  EXPECT_EQ(snap.sessions[2].rate_limited, 3u);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"dropped_oldest\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rejected\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sessions\": ["), std::string::npos);
  for (const int id : {d, r, l}) router.close(id);
}

// ---- IngestService ---------------------------------------------------------

/// One sink's record of a delivery; Delivery::update references the
/// service's reusable tick buffer, so everything needed is copied out here.
struct Recorded {
  std::uint64_t sequence = 0;
  std::size_t frame_index = 0;
  bool airborne = false;
  pose::FrameResult result;
};

void expect_same_update(const Recorded& got, const core::StreamUpdate& want, std::size_t frame) {
  EXPECT_EQ(got.frame_index, want.frame_index) << "frame " << frame;
  EXPECT_EQ(got.airborne, want.airborne) << "frame " << frame;
  EXPECT_EQ(got.result.pose, want.result.pose) << "frame " << frame;
  EXPECT_EQ(got.result.stage, want.result.stage) << "frame " << frame;
  EXPECT_EQ(got.result.candidate_index, want.result.candidate_index) << "frame " << frame;
  EXPECT_DOUBLE_EQ(got.result.posterior, want.result.posterior) << "frame " << frame;
}

/// Acceptance bar: for every backpressure policy, the service-delivered
/// updates are identical to a direct StreamSession::push_frame replay when
/// no frame is dropped (capacity >= clip length, limiter off).
TEST(IngestService, BatchParityForEveryPolicyWhenNothingDrops) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(2008, 12);

  for (const BackpressurePolicy policy : {BackpressurePolicy::kBlock,
                                          BackpressurePolicy::kDropOldest,
                                          BackpressurePolicy::kRejectNewest}) {
    IngestServiceConfig config;
    config.manager.workers = 2;
    IngestService service(classifier, {}, config);

    IngestSessionConfig session_config;
    session_config.queue.capacity = clip.frames.size();
    session_config.queue.policy = policy;
    std::vector<Recorded> delivered;
    const int id = service.open_session(clip.background, session_config,
                                        [&](const Delivery& d) {
                                          delivered.push_back({d.sequence, d.update.frame_index,
                                                               d.update.airborne, d.update.result});
                                        });

    // Scheduler deliberately stopped: flush() runs the drain->tick->deliver
    // passes inline, so the whole parity path is deterministic.
    for (const RgbImage& frame : clip.frames) {
      ASSERT_EQ(service.push(id, frame), PushOutcome::kAccepted);
    }
    service.flush();

    core::StreamSession reference(classifier, clip.background);
    ASSERT_EQ(delivered.size(), clip.frames.size()) << policy_name(policy);
    for (std::size_t i = 0; i < clip.frames.size(); ++i) {
      EXPECT_EQ(delivered[i].sequence, i) << policy_name(policy);
      expect_same_update(delivered[i], reference.push_frame(clip.frames[i]), i);
    }

    // The final report agrees with the reference session's, and closing
    // leaves the plane empty.
    const core::JumpReport got = service.close_session(id);
    const core::JumpReport want = reference.finish();
    ASSERT_EQ(got.findings.size(), want.findings.size());
    for (std::size_t i = 0; i < got.findings.size(); ++i) {
      EXPECT_EQ(got.findings[i].passed, want.findings[i].passed);
    }
    EXPECT_EQ(service.open_sessions(), 0u);

    const IngestMetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.pushed, clip.frames.size());
    EXPECT_EQ(snap.delivered, clip.frames.size());
    EXPECT_EQ(snap.dropped_oldest + snap.rejected + snap.rate_limited, 0u);
  }
}

TEST(IngestService, DropOldestKeepsDeliveringTheFreshestFrames) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(21, 10);

  IngestServiceConfig config;
  config.manager.workers = 1;
  IngestService service(classifier, {}, config);
  IngestSessionConfig session_config;
  session_config.queue.capacity = 2;
  session_config.queue.policy = BackpressurePolicy::kDropOldest;
  std::vector<std::uint64_t> sequences;
  const int id = service.open_session(clip.background, session_config,
                                      [&](const Delivery& d) { sequences.push_back(d.sequence); });

  // Ten frames into a 2-deep queue with no consumer: eight are shed.
  for (const RgbImage& frame : clip.frames) service.push(id, frame);
  service.flush();  // delivers the two survivors inline

  ASSERT_EQ(sequences.size(), 2u);
  EXPECT_EQ(sequences[0], 8u);  // the freshest two admissions survived
  EXPECT_EQ(sequences[1], 9u);
  const IngestMetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.pushed, 10u);
  EXPECT_EQ(snap.delivered, 2u);
  EXPECT_EQ(snap.dropped_oldest, 8u);
  service.close_session(id);
}

TEST(IngestService, IdleSessionsAreEvictedThroughTheScheduler) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(33, 4);

  ManualClock clock;
  IngestServiceConfig config;
  config.manager.workers = 1;
  config.router.clock = clock.fn();
  config.poll_interval = 1ms;
  IngestService service(classifier, {}, config);

  IngestSessionConfig session_config;
  session_config.idle_timeout = 50ms;
  std::atomic<int> delivered{0};
  const int id = service.open_session(clip.background, session_config,
                                      [&](const Delivery&) { delivered.fetch_add(1); });
  std::mutex mutex;
  std::condition_variable cv;
  int evicted_id = -1;
  int evicted_findings = -1;
  service.set_eviction_sink([&](int session, const core::JumpReport& report) {
    std::lock_guard<std::mutex> lock(mutex);
    evicted_id = session;
    evicted_findings = report.total_count();
    cv.notify_all();
  });

  service.start();
  ASSERT_EQ(service.push(id, clip.frames[0]), PushOutcome::kAccepted);
  service.flush();
  EXPECT_EQ(delivered.load(), 1);

  // Jump the injected clock past the idle timeout; the scheduler notices on
  // its next poll and evicts the session with a final report.
  clock.advance(200ms);
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return evicted_id != -1; }));
  }
  EXPECT_EQ(evicted_id, id);
  EXPECT_EQ(evicted_findings, 6);  // a finished report resolves all six rules
  EXPECT_EQ(service.open_sessions(), 0u);
  EXPECT_EQ(service.metrics().evicted_sessions, 1u);
  service.stop();
}

/// The TSan stress target (scripts/ci.sh --tsan-stress): concurrent
/// producers hammer small kBlock queues while the scheduler drains, ticks
/// and delivers. Sessions 0..2 have one producer each and must deliver
/// bit-identical results to a direct replay; session 3 is fed by two
/// producers racing each other (MPSC) and must still deliver in admission
/// order with nothing lost.
TEST(IngestService, MultiProducerStressDeliversEveryFrameInOrder) {
  const pose::PoseDbnClassifier classifier;
  const int frames = 10;
  const std::vector<synth::Clip> clips = {make_clip(41, frames), make_clip(42, frames),
                                          make_clip(43, frames), make_clip(44, frames)};

  IngestServiceConfig config;
  config.manager.workers = 2;
  config.poll_interval = 1ms;
  IngestService service(classifier, {}, config);

  IngestSessionConfig session_config;
  session_config.queue.capacity = 2;  // small on purpose: force blocking
  session_config.queue.policy = BackpressurePolicy::kBlock;

  struct PerSession {
    std::mutex mutex;
    std::vector<Recorded> delivered;
  };
  std::vector<PerSession> recorded(clips.size());
  std::vector<int> ids;
  for (std::size_t s = 0; s < clips.size(); ++s) {
    PerSession& bucket = recorded[s];
    ids.push_back(service.open_session(clips[s].background, session_config,
                                       [&bucket](const Delivery& d) {
                                         std::lock_guard<std::mutex> lock(bucket.mutex);
                                         bucket.delivered.push_back(
                                             {d.sequence, d.update.frame_index, d.update.airborne,
                                              d.update.result});
                                       }));
  }

  service.start();
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s + 1 < clips.size(); ++s) {
    producers.emplace_back([&, s] {
      for (const RgbImage& frame : clips[s].frames) {
        ASSERT_EQ(service.push(ids[s], frame), PushOutcome::kAccepted);  // kBlock: lossless
      }
    });
  }
  // Session 3: two producers race; admission interleaving is arbitrary but
  // delivery must follow it exactly.
  const std::size_t last = clips.size() - 1;
  for (int half = 0; half < 2; ++half) {
    producers.emplace_back([&, half] {
      for (int i = half * frames / 2; i < (half + 1) * frames / 2; ++i) {
        ASSERT_EQ(service.push(ids[last], clips[last].frames[static_cast<std::size_t>(i)]),
                  PushOutcome::kAccepted);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.flush();
  service.stop();

  // Single-producer sessions: full parity with a direct replay.
  for (std::size_t s = 0; s + 1 < clips.size(); ++s) {
    core::StreamSession reference(classifier, clips[s].background);
    std::lock_guard<std::mutex> lock(recorded[s].mutex);
    ASSERT_EQ(recorded[s].delivered.size(), clips[s].frames.size()) << "session " << s;
    for (std::size_t i = 0; i < clips[s].frames.size(); ++i) {
      EXPECT_EQ(recorded[s].delivered[i].sequence, i) << "session " << s;
      expect_same_update(recorded[s].delivered[i], reference.push_frame(clips[s].frames[i]), i);
    }
  }
  // Contended session: every admitted frame delivered, in admission order.
  {
    std::lock_guard<std::mutex> lock(recorded[last].mutex);
    ASSERT_EQ(recorded[last].delivered.size(), static_cast<std::size_t>(frames));
    for (std::size_t i = 0; i < recorded[last].delivered.size(); ++i) {
      EXPECT_EQ(recorded[last].delivered[i].sequence, i);
      EXPECT_EQ(recorded[last].delivered[i].frame_index, i);
    }
  }

  const IngestMetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.pushed, clips.size() * static_cast<std::size_t>(frames));
  EXPECT_EQ(snap.delivered, snap.pushed);
  for (const int id : ids) service.close_session(id);
}

TEST(IngestService, CloseSessionFlushesQueuedFramesFirst) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(55, 6);

  IngestServiceConfig config;
  config.manager.workers = 1;
  IngestService service(classifier, {}, config);
  IngestSessionConfig session_config;
  session_config.queue.capacity = clip.frames.size();
  std::atomic<int> delivered{0};
  const int id = service.open_session(clip.background, session_config,
                                      [&](const Delivery&) { delivered.fetch_add(1); });
  for (const RgbImage& frame : clip.frames) service.push(id, frame);

  // close_session seals, flushes inline (scheduler stopped), then closes:
  // every queued frame reaches the sink before the report is produced.
  const core::JumpReport report = service.close_session(id);
  EXPECT_EQ(delivered.load(), static_cast<int>(clip.frames.size()));
  EXPECT_EQ(report.total_count(), 6);
  EXPECT_EQ(service.metrics().delivered, clip.frames.size());
}

TEST(IngestService, StopMidStreamThenFlushDeliversTheRemainderInline) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(66, 12);

  IngestServiceConfig config;
  config.manager.workers = 1;
  config.poll_interval = 1ms;
  IngestService service(classifier, {}, config);
  IngestSessionConfig session_config;
  session_config.queue.capacity = clip.frames.size();
  std::mutex delivered_mutex;
  std::vector<std::uint64_t> delivered;
  const int id = service.open_session(clip.background, session_config,
                                      [&](const Delivery& d) {
                                        std::lock_guard<std::mutex> lock(delivered_mutex);
                                        delivered.push_back(d.sequence);
                                      });

  // First half rides the live scheduler; then stop() lands mid-stream with
  // the second half still queued (or not yet pushed). Frames admitted after
  // stop stay queued — flush() must process them inline on this thread.
  service.start();
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_EQ(service.push(id, clip.frames[i]), PushOutcome::kAccepted);
  }
  service.stop();
  for (std::size_t i = 6; i < clip.frames.size(); ++i) {
    ASSERT_EQ(service.push(id, clip.frames[i]), PushOutcome::kAccepted);
  }
  service.flush();

  std::lock_guard<std::mutex> lock(delivered_mutex);
  ASSERT_EQ(delivered.size(), clip.frames.size());
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i], i);  // admission order survives the stop boundary
  }
  EXPECT_EQ(service.metrics().delivered, clip.frames.size());
}

TEST(IngestService, StopStartCyclesKeepDeliveryOrderAndAccounting) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(77, 12);

  IngestServiceConfig config;
  config.manager.workers = 1;
  config.poll_interval = 1ms;
  IngestService service(classifier, {}, config);
  IngestSessionConfig session_config;
  session_config.queue.capacity = 4;
  session_config.queue.policy = BackpressurePolicy::kBlock;
  std::mutex delivered_mutex;
  std::vector<std::uint64_t> delivered;
  const int id = service.open_session(clip.background, session_config,
                                      [&](const Delivery& d) {
                                        std::lock_guard<std::mutex> lock(delivered_mutex);
                                        delivered.push_back(d.sequence);
                                      });

  // Three stop/start cycles, four frames each. stop() is idempotent-safe to
  // call around flush(), and a restarted scheduler must pick the plane back
  // up with no frame lost, duplicated, or reordered.
  for (int cycle = 0; cycle < 3; ++cycle) {
    service.start();
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t frame = static_cast<std::size_t>(cycle) * 4 + i;
      ASSERT_EQ(service.push(id, clip.frames[frame]), PushOutcome::kAccepted);
    }
    service.flush();
    service.stop();
    service.stop();  // second stop is a no-op, not a crash or a hang
  }

  std::lock_guard<std::mutex> lock(delivered_mutex);
  ASSERT_EQ(delivered.size(), clip.frames.size());
  for (std::size_t i = 0; i < delivered.size(); ++i) EXPECT_EQ(delivered[i], i);
  const IngestMetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.pushed, clip.frames.size());
  EXPECT_EQ(snap.delivered, clip.frames.size());
}

TEST(IngestService, CloseSessionRacingBlockedProducersNeverHangs) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(88, 8);

  IngestServiceConfig config;
  config.manager.workers = 1;
  config.poll_interval = 1ms;
  IngestService service(classifier, {}, config);
  IngestSessionConfig session_config;
  session_config.queue.capacity = 1;  // tiny: producers block almost immediately
  session_config.queue.policy = BackpressurePolicy::kBlock;
  std::atomic<int> delivered{0};
  const int id = service.open_session(clip.background, session_config,
                                      [&](const Delivery&) { delivered.fetch_add(1); });

  // Producers hammer a 1-deep blocking queue while close_session() lands
  // concurrently. The seal must wake any parked producer with kClosed
  // (not strand it), and close_session's internal flush must account every
  // admitted frame so neither side deadlocks.
  service.start();
  std::atomic<int> accepted{0};
  std::atomic<int> closed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      for (const RgbImage& frame : clip.frames) {
        switch (service.push(id, frame)) {
          case PushOutcome::kAccepted:
          case PushOutcome::kReplacedOldest:
            accepted.fetch_add(1);
            break;
          case PushOutcome::kClosed:
            closed.fetch_add(1);
            break;
          default:
            break;
        }
      }
    });
  }
  std::this_thread::sleep_for(5ms);  // let some traffic through first
  const core::JumpReport report = service.close_session(id);
  for (std::thread& t : producers) t.join();
  service.stop();

  // Every producer attempt resolved one way or the other, and the session
  // is gone. Frames admitted before the seal were delivered or discarded
  // by the close — either way flush() discharged them, or we'd still be
  // blocked inside close_session above.
  EXPECT_EQ(accepted.load() + closed.load(), 3 * static_cast<int>(clip.frames.size()));
  EXPECT_EQ(service.open_sessions(), 0u);
  EXPECT_GE(report.total_count(), 0);
  EXPECT_LE(delivered.load(), accepted.load());
}

}  // namespace
}  // namespace slj::ingest
