#include "imaging/morphology.hpp"

#include <gtest/gtest.h>

#include <random>

namespace slj {
namespace {

BinaryImage random_mask(int w, int h, unsigned seed, int mod = 3) {
  std::mt19937 rng(seed);
  BinaryImage img(w, h);
  for (auto& v : img.data()) v = rng() % mod == 0 ? 1 : 0;
  return img;
}

TEST(Dilate, GrowsSinglePixelToNeighbourhood) {
  BinaryImage img(5, 5, 0);
  img.at(2, 2) = 1;
  const BinaryImage sq = dilate(img, Structuring::kSquare8);
  EXPECT_EQ(count_foreground(sq), 9u);
  const BinaryImage cr = dilate(img, Structuring::kCross4);
  EXPECT_EQ(count_foreground(cr), 5u);
}

TEST(Erode, ShrinksSquare) {
  BinaryImage img(5, 5, 0);
  for (int y = 1; y <= 3; ++y) {
    for (int x = 1; x <= 3; ++x) img.at(x, y) = 1;
  }
  const BinaryImage out = erode(img, Structuring::kSquare8);
  EXPECT_EQ(count_foreground(out), 1u);
  EXPECT_EQ(out.at(2, 2), 1);
}

TEST(Erode, OutsideCountsAsForeground) {
  // Erosion pads with foreground, so a full image is a fixed point; this is
  // what keeps closing extensive at the border.
  BinaryImage img(3, 3, 1);
  EXPECT_EQ(erode(img, Structuring::kSquare8), img);
}

class MorphologyDuality : public ::testing::TestWithParam<unsigned> {};

TEST_P(MorphologyDuality, DilationContainsOriginalErosionContained) {
  const BinaryImage img = random_mask(17, 11, GetParam());
  const BinaryImage d = dilate(img);
  const BinaryImage e = erode(img);
  for (std::size_t i = 0; i < img.size(); ++i) {
    if (img.data()[i]) EXPECT_TRUE(d.data()[i]);   // extensive
    if (e.data()[i]) EXPECT_TRUE(img.data()[i]);   // anti-extensive
  }
}

TEST_P(MorphologyDuality, OpeningIsContainedClosingContains) {
  const BinaryImage img = random_mask(17, 11, GetParam() + 100);
  const BinaryImage opened = open(img);
  const BinaryImage closed = close(img);
  for (std::size_t i = 0; i < img.size(); ++i) {
    if (opened.data()[i]) EXPECT_TRUE(img.data()[i]);
    if (img.data()[i]) EXPECT_TRUE(closed.data()[i]);
  }
}

TEST_P(MorphologyDuality, OpenAndCloseAreIdempotent) {
  const BinaryImage img = random_mask(17, 11, GetParam() + 200);
  const BinaryImage o1 = open(img);
  EXPECT_EQ(open(o1), o1);
  const BinaryImage c1 = close(img);
  EXPECT_EQ(close(c1), c1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MorphologyDuality, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(FillHoles, FillsEnclosedBackground) {
  // A ring with a hollow centre.
  BinaryImage img(7, 7, 0);
  for (int i = 1; i <= 5; ++i) {
    img.at(i, 1) = img.at(i, 5) = 1;
    img.at(1, i) = img.at(5, i) = 1;
  }
  const BinaryImage filled = fill_holes(img);
  for (int y = 2; y <= 4; ++y) {
    for (int x = 2; x <= 4; ++x) EXPECT_EQ(filled.at(x, y), 1);
  }
  // Outside stays background.
  EXPECT_EQ(filled.at(0, 0), 0);
  EXPECT_EQ(filled.at(6, 6), 0);
}

TEST(FillHoles, LeavesOpenConcavityAlone) {
  // A 'U' shape: the inner column is connected to the border at the top.
  BinaryImage img(5, 5, 0);
  for (int y = 0; y < 5; ++y) {
    img.at(1, y) = 1;
    img.at(3, y) = 1;
  }
  for (int x = 1; x <= 3; ++x) img.at(x, 4) = 1;
  const BinaryImage filled = fill_holes(img);
  EXPECT_EQ(filled.at(2, 0), 0);  // mouth of the U stays open
  EXPECT_EQ(filled.at(2, 2), 0);
}

TEST(FillHoles, NoForegroundNoChange) {
  BinaryImage img(4, 4, 0);
  EXPECT_EQ(fill_holes(img), img);
}

TEST(FillHoles, FullForegroundUnchanged) {
  BinaryImage img(4, 4, 1);
  EXPECT_EQ(fill_holes(img), img);
}

}  // namespace
}  // namespace slj
