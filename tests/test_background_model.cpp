#include "segmentation/background_model.hpp"

#include <gtest/gtest.h>

namespace slj::seg {
namespace {

RgbImage constant_frame(int w, int h, Rgb value) { return RgbImage(w, h, value); }

TEST(BackgroundModel, ThrowsOnEvenWindow) {
  EXPECT_THROW(BackgroundModel(2), std::invalid_argument);
  EXPECT_THROW(BackgroundModel(0), std::invalid_argument);
}

TEST(BackgroundModel, EmptyModelHasNoBackground) {
  BackgroundModel model(3);
  EXPECT_FALSE(model.has_background());
  EXPECT_THROW(model.averaged(), std::logic_error);
}

TEST(BackgroundModel, SingleFrameAverageEqualsWindowMean) {
  BackgroundModel model(3);
  model.set_background(constant_frame(8, 6, {30, 60, 90}));
  EXPECT_TRUE(model.has_background());
  const RgbMeans& m = model.averaged();
  EXPECT_DOUBLE_EQ(m.r.at(4, 3), 30.0);
  EXPECT_DOUBLE_EQ(m.g.at(4, 3), 60.0);
  EXPECT_DOUBLE_EQ(m.b.at(4, 3), 90.0);
}

TEST(BackgroundModel, AccumulationAveragesFrames) {
  BackgroundModel model(1);
  model.accumulate(constant_frame(4, 4, {10, 10, 10}));
  model.accumulate(constant_frame(4, 4, {30, 30, 30}));
  const RgbMeans& m = model.averaged();
  EXPECT_DOUBLE_EQ(m.r.at(2, 2), 20.0);
}

TEST(BackgroundModel, MismatchedFrameSizeThrows) {
  BackgroundModel model(3);
  model.accumulate(constant_frame(4, 4, {}));
  EXPECT_THROW(model.accumulate(constant_frame(5, 4, {})), std::invalid_argument);
}

TEST(BackgroundModel, DimensionsAvailableBeforeAveraging) {
  BackgroundModel model(3);
  model.set_background(constant_frame(9, 7, {}));
  EXPECT_EQ(model.width(), 9);
  EXPECT_EQ(model.height(), 7);
}

TEST(BackgroundModel, ResetForgetsFrames) {
  BackgroundModel model(3);
  model.set_background(constant_frame(4, 4, {50, 50, 50}));
  model.reset();
  EXPECT_FALSE(model.has_background());
  model.set_background(constant_frame(4, 4, {80, 80, 80}));
  EXPECT_DOUBLE_EQ(model.averaged().r.at(1, 1), 80.0);
}

TEST(BackgroundModel, WindowSmoothsSpatialVariation) {
  RgbImage bg(3, 1, {0, 0, 0});
  bg.at(0, 0) = {90, 0, 0};
  BackgroundModel model(3);
  model.set_background(bg);
  // Centre pixel's 3x3 (clamped to 3x1) window covers all three pixels.
  EXPECT_DOUBLE_EQ(model.averaged().r.at(1, 0), 30.0);
}

}  // namespace
}  // namespace slj::seg
