// Failure injection: the pipeline and analyzer must degrade gracefully —
// never crash, never emit malformed results — when frames are corrupted,
// the subject disappears, or the camera saturates.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/trainer.hpp"
#include "synth/dataset.hpp"

namespace slj::core {
namespace {

synth::Clip test_clip(std::uint32_t seed = 33) {
  synth::ClipSpec spec;
  spec.seed = seed;
  spec.frame_count = 30;
  return synth::generate_clip(spec);
}

JumpAnalyzer trained_analyzer() {
  synth::DatasetSpec spec;
  spec.seed = 77;
  spec.train_clip_frames = {44, 43};
  spec.test_clip_frames = {};
  JumpAnalyzer analyzer({}, {});
  analyzer.train(synth::generate_dataset(spec));
  return analyzer;
}

TEST(Robustness, AllBlackFramesYieldUnknowns) {
  JumpAnalyzer analyzer = trained_analyzer();
  synth::Clip clip = test_clip();
  const RgbImage black(clip.background.width(), clip.background.height(), Rgb{0, 0, 0});
  std::vector<RgbImage> frames(10, black);
  const ClipAnalysis analysis = analyzer.analyze(clip.background, frames);
  ASSERT_EQ(analysis.frames.size(), 10u);
  // A uniformly black frame against a dark studio may segment as noise or
  // nothing; results must simply be well-formed.
  for (const auto& r : analysis.frames) {
    EXPECT_GE(pose::index_of(r.stage), 0);
    EXPECT_LE(pose::index_of(r.stage), 3);
  }
}

TEST(Robustness, SaturatedWhiteFrameDoesNotCrash) {
  JumpAnalyzer analyzer = trained_analyzer();
  synth::Clip clip = test_clip();
  clip.frames[10] = RgbImage(clip.background.width(), clip.background.height(),
                             Rgb{255, 255, 255});
  const ClipAnalysis analysis = analyzer.analyze(clip.background, clip.frames);
  EXPECT_EQ(analysis.frames.size(), clip.frames.size());
}

TEST(Robustness, SubjectVanishingMidClipKeepsSequenceSane) {
  JumpAnalyzer analyzer = trained_analyzer();
  synth::Clip clip = test_clip();
  // Subject disappears for three frames (occluder, dropout, ...).
  for (int i = 12; i < 15; ++i) clip.frames[static_cast<std::size_t>(i)] = clip.background;
  const ClipAnalysis analysis = analyzer.analyze(clip.background, clip.frames);
  ASSERT_EQ(analysis.frames.size(), clip.frames.size());
  // Stage trajectory stays monotone across the gap.
  int prev = 0;
  for (const auto& r : analysis.frames) {
    EXPECT_GE(pose::index_of(r.stage), prev);
    prev = pose::index_of(r.stage);
  }
}

TEST(Robustness, SinglePixelNoiseStormStillSegments) {
  JumpAnalyzer analyzer = trained_analyzer();
  synth::Clip clip = test_clip();
  std::mt19937 rng(5);
  RgbImage& frame = clip.frames[8];
  for (int i = 0; i < 500; ++i) {
    const int x = static_cast<int>(rng() % static_cast<unsigned>(frame.width()));
    const int y = static_cast<int>(rng() % static_cast<unsigned>(frame.height()));
    frame.at(x, y) = {255, 255, 255};
  }
  const ClipAnalysis analysis = analyzer.analyze(clip.background, clip.frames);
  EXPECT_EQ(analysis.frames.size(), clip.frames.size());
}

TEST(Robustness, TinyFramesWork) {
  // A pathologically small camera: nothing should assume a minimum size.
  FramePipeline pipeline;
  pipeline.set_background(RgbImage(8, 8, Rgb{10, 10, 10}));
  const FrameObservation obs = pipeline.process(RgbImage(8, 8, Rgb{200, 200, 200}));
  EXPECT_LE(obs.key_points.size(), 64u);
}

TEST(Robustness, SingleFrameClipAnalyzes) {
  JumpAnalyzer analyzer = trained_analyzer();
  const synth::Clip clip = test_clip();
  const ClipAnalysis analysis =
      analyzer.analyze(clip.background, {clip.frames.front()});
  EXPECT_EQ(analysis.frames.size(), 1u);
  EXPECT_FALSE(analysis.report.all_passed());  // one frame cannot show a full jump
}

TEST(Robustness, EmptyClipAnalyzes) {
  JumpAnalyzer analyzer = trained_analyzer();
  const synth::Clip clip = test_clip();
  const ClipAnalysis analysis = analyzer.analyze(clip.background, {});
  EXPECT_TRUE(analysis.frames.empty());
  EXPECT_EQ(analysis.report.passed_count(), 0);
}

TEST(Robustness, UntrainedClassifierStillRunsEndToEnd) {
  // Uniform CPTs everywhere: predictions are arbitrary but valid.
  JumpAnalyzer analyzer({}, {});
  const synth::Clip clip = test_clip();
  const ClipAnalysis analysis = analyzer.analyze(clip);
  EXPECT_EQ(analysis.frames.size(), clip.frames.size());
}

TEST(Robustness, TrackerPipelineSurvivesDropouts) {
  const synth::Clip clip = test_clip();
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  detect::BlobTracker tracker;
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    const RgbImage& frame = (i >= 10 && i < 13) ? clip.background : clip.frames[i];
    const FrameObservation obs = pipeline.process(frame, tracker);
    EXPECT_EQ(obs.silhouette.width(), clip.background.width());
  }
}

}  // namespace
}  // namespace slj::core
