#include "imaging/filters.hpp"

#include <gtest/gtest.h>

#include <random>

namespace slj {
namespace {

TEST(MedianFilter, ConstantImageIsFixedPoint) {
  GrayImage img(6, 6, 42);
  EXPECT_EQ(median_filter(img, 3), img);
  EXPECT_EQ(median_filter(img, 5), img);
}

TEST(MedianFilter, RemovesSaltNoiseFromFlatRegion) {
  GrayImage img(7, 7, 10);
  img.at(3, 3) = 255;  // single hot pixel
  const GrayImage out = median_filter(img, 3);
  EXPECT_EQ(out.at(3, 3), 10);
}

TEST(MedianFilter, PreservesLargeStep) {
  // A vertical edge through the middle must survive a 3x3 median.
  GrayImage img(8, 8, 0);
  for (int y = 0; y < 8; ++y) {
    for (int x = 4; x < 8; ++x) img.at(x, y) = 200;
  }
  const GrayImage out = median_filter(img, 3);
  EXPECT_EQ(out.at(1, 4), 0);
  EXPECT_EQ(out.at(6, 4), 200);
}

TEST(MedianFilter, EvenWindowThrows) {
  GrayImage img(4, 4);
  EXPECT_THROW(median_filter(img, 4), std::invalid_argument);
  EXPECT_THROW(median_filter(img, 0), std::invalid_argument);
}

class BinaryMedianEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BinaryMedianEquivalence, MatchesGrayscaleMedianOn01Images) {
  const int k = GetParam();
  std::mt19937 rng(static_cast<unsigned>(1000 + k));
  BinaryImage mask(13, 9);
  for (auto& v : mask.data()) v = rng() % 3 == 0 ? 1 : 0;
  const BinaryImage fast = median_filter_binary(mask, k);
  const GrayImage slow = median_filter(mask, k);
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      ASSERT_EQ(fast.at(x, y), slow.at(x, y)) << "k=" << k << " at (" << x << "," << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, BinaryMedianEquivalence, ::testing::Values(1, 3, 5, 7));

TEST(BinaryMedian, FillsSmallHole) {
  BinaryImage mask(7, 7, 1);
  mask.at(3, 3) = 0;  // pinhole
  const BinaryImage out = median_filter_binary(mask, 3);
  EXPECT_EQ(out.at(3, 3), 1);
}

TEST(BinaryMedian, ErasesIsolatedSpeck) {
  BinaryImage mask(7, 7, 0);
  mask.at(3, 3) = 1;
  const BinaryImage out = median_filter_binary(mask, 3);
  EXPECT_EQ(count_foreground(out), 0u);
}

TEST(BinaryMedian, WindowOneIsIdentity) {
  std::mt19937 rng(4);
  BinaryImage mask(9, 5);
  for (auto& v : mask.data()) v = rng() % 2;
  EXPECT_EQ(median_filter_binary(mask, 1), mask);
}

TEST(BoxBlur, ConstantImageUnchanged) {
  GrayImage img(5, 5, 100);
  EXPECT_EQ(box_blur(img, 3), img);
}

TEST(BoxBlur, AveragesNeighbourhood) {
  GrayImage img(3, 3, 0);
  img.at(1, 1) = 90;
  const GrayImage out = box_blur(img, 3);
  EXPECT_EQ(out.at(1, 1), 10);  // 90 / 9
}

TEST(BoxBlur, PreservesMeanRoughly) {
  std::mt19937 rng(5);
  GrayImage img(16, 16);
  double mean_in = 0.0;
  for (auto& v : img.data()) {
    v = static_cast<std::uint8_t>(rng() % 256);
    mean_in += v;
  }
  mean_in /= static_cast<double>(img.size());
  const GrayImage out = box_blur(img, 5);
  double mean_out = 0.0;
  for (const auto v : out.data()) mean_out += v;
  mean_out /= static_cast<double>(out.size());
  EXPECT_NEAR(mean_in, mean_out, 3.0);
}

}  // namespace
}  // namespace slj
