#include "segmentation/object_extractor.hpp"

#include <gtest/gtest.h>

#include <random>

#include "imaging/draw.hpp"

namespace slj::seg {
namespace {

/// Black studio background with optional noise.
RgbImage studio_background(int w, int h, unsigned seed = 0, double sigma = 0.0) {
  RgbImage img(w, h, {12, 12, 15});
  if (sigma > 0.0) {
    std::mt19937 rng(seed);
    std::normal_distribution<double> noise(0.0, sigma);
    for (auto& p : img.data()) {
      const auto jitter = [&](std::uint8_t v) {
        return static_cast<std::uint8_t>(std::clamp(v + noise(rng), 0.0, 255.0));
      };
      p = {jitter(p.r), jitter(p.g), jitter(p.b)};
    }
  }
  return img;
}

/// Paints a bright disc "object" onto a copy of the background.
RgbImage with_object(const RgbImage& bg, PointF centre, double radius) {
  RgbImage frame = bg;
  BinaryImage mask(bg.width(), bg.height(), 0);
  fill_disc(mask, centre, radius);
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      if (mask.at(x, y)) frame.at(x, y) = {180, 150, 120};
    }
  }
  return frame;
}

TEST(ObjectExtractor, ThrowsWithoutBackground) {
  ObjectExtractor ex;
  EXPECT_THROW(ex.silhouette(RgbImage(8, 8)), std::logic_error);
}

TEST(ObjectExtractor, ThrowsOnFrameSizeMismatch) {
  ObjectExtractor ex;
  ex.set_background(studio_background(8, 8));
  EXPECT_THROW(ex.silhouette(RgbImage(9, 8)), std::invalid_argument);
}

TEST(ObjectExtractor, RejectsEvenMedianWindow) {
  ExtractorParams params;
  params.median_window = 4;
  EXPECT_THROW(ObjectExtractor{params}, std::invalid_argument);
}

TEST(ObjectExtractor, RejectsInvalidWindow) {
  for (const int window : {0, -1, 2, 4}) {
    ExtractorParams params;
    params.window = window;
    EXPECT_THROW(ObjectExtractor{params}, std::invalid_argument) << "window " << window;
  }
}

TEST(ObjectExtractor, RejectsOutOfRangeThObject) {
  for (const int th : {-1, 256, 1000}) {
    ExtractorParams params;
    params.th_object = th;
    EXPECT_THROW(ObjectExtractor{params}, std::invalid_argument) << "th_object " << th;
  }
  // Boundary values are legal.
  ExtractorParams lo;
  lo.th_object = 0;
  EXPECT_NO_THROW(ObjectExtractor{lo});
  ExtractorParams hi;
  hi.th_object = 255;
  EXPECT_NO_THROW(ObjectExtractor{hi});
}

TEST(ObjectExtractor, RejectsNegativeNoiseFloor) {
  ExtractorParams params;
  params.min_max_difference = -1.0;
  EXPECT_THROW(ObjectExtractor{params}, std::invalid_argument);
}

TEST(ObjectExtractor, NoiseFloorSuppressesPhantomSilhouette) {
  // A near-static scene: the frame differs from the background by a few
  // grey levels of sensor noise only. Without the noise floor the max-shift
  // normalization rescales that noise so its peak hits 255 and a phantom
  // blob crosses Th_Object.
  const RgbImage bg = studio_background(32, 32);
  RgbImage frame = bg;
  for (int y = 10; y < 16; ++y) {
    for (int x = 10; x < 16; ++x) {
      frame.at(x, y) = {static_cast<std::uint8_t>(bg.at(x, y).r + 3), bg.at(x, y).g,
                        bg.at(x, y).b};
    }
  }
  ObjectExtractor ex;  // default min_max_difference = 12
  ex.set_background(bg);
  const ExtractionResult res = ex.extract(frame);
  EXPECT_GT(res.max_difference, 0.0);
  EXPECT_LT(res.max_difference, ex.params().min_max_difference);
  EXPECT_EQ(count_foreground(res.raw_mask), 0u) << "noise was rescaled into a phantom mask";
  EXPECT_EQ(count_foreground(res.silhouette), 0u);

  // The same noise pattern with the floor disabled reproduces the old
  // behaviour — a phantom silhouette — pinning that the guard is what
  // suppresses it.
  ExtractorParams no_floor;
  no_floor.min_max_difference = 0.0;
  ObjectExtractor ex_off(no_floor);
  ex_off.set_background(bg);
  EXPECT_GT(count_foreground(ex_off.extract(frame).raw_mask), 0u);
}

TEST(ObjectExtractor, NoiseFloorKeepsRealObjects) {
  const RgbImage bg = studio_background(48, 48);
  const RgbImage frame = with_object(bg, {24, 24}, 10.0);
  ObjectExtractor ex;
  ex.set_background(bg);
  const ExtractionResult res = ex.extract(frame);
  EXPECT_GE(res.max_difference, ex.params().min_max_difference);
  EXPECT_GT(count_foreground(res.silhouette), 0u);
}

TEST(ObjectExtractor, IdenticalFrameYieldsEmptyMask) {
  const RgbImage bg = studio_background(16, 16);
  ObjectExtractor ex;
  ex.set_background(bg);
  const ExtractionResult res = ex.extract(bg);
  EXPECT_DOUBLE_EQ(res.max_difference, 0.0);
  EXPECT_EQ(count_foreground(res.silhouette), 0u);
}

TEST(ObjectExtractor, RecoversBrightDisc) {
  const RgbImage bg = studio_background(48, 48);
  const RgbImage frame = with_object(bg, {24, 24}, 10.0);
  ObjectExtractor ex;
  ex.set_background(bg);
  const ExtractionResult res = ex.extract(frame);

  BinaryImage expected(48, 48, 0);
  fill_disc(expected, {24, 24}, 10.0);
  EXPECT_GT(iou(res.silhouette, expected), 0.85);
}

TEST(ObjectExtractor, NormalizationPutsMaxAt255) {
  const RgbImage bg = studio_background(32, 32);
  const RgbImage frame = with_object(bg, {16, 16}, 6.0);
  ObjectExtractor ex;
  ex.set_background(bg);
  const ExtractionResult res = ex.extract(frame);
  std::uint8_t max_v = 0;
  for (const auto v : res.normalized.data()) max_v = std::max(max_v, v);
  EXPECT_EQ(max_v, 255);
}

TEST(ObjectExtractor, RawMaskUsesThObjectThreshold) {
  const RgbImage bg = studio_background(32, 32);
  const RgbImage frame = with_object(bg, {16, 16}, 6.0);
  ExtractorParams params;
  params.th_object = 20;
  ObjectExtractor ex(params);
  ex.set_background(bg);
  const ExtractionResult res = ex.extract(frame);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      EXPECT_EQ(res.raw_mask.at(x, y), res.normalized.at(x, y) > 20 ? 1 : 0);
    }
  }
}

TEST(ObjectExtractor, MedianSmoothingRemovesNoiseSpecks) {
  const RgbImage bg = studio_background(48, 48);
  RgbImage frame = with_object(bg, {24, 24}, 10.0);
  // Sprinkle isolated bright pixels — sensor noise.
  std::mt19937 rng(9);
  for (int i = 0; i < 12; ++i) {
    const int x = static_cast<int>(rng() % 48);
    const int y = static_cast<int>(rng() % 48);
    if (distance(PointF{static_cast<double>(x), static_cast<double>(y)}, PointF{24, 24}) > 14) {
      frame.at(x, y) = {200, 200, 200};
    }
  }
  ObjectExtractor ex;
  ex.set_background(bg);
  const ExtractionResult res = ex.extract(frame);
  // The specks survive in the raw mask but not the final silhouette.
  BinaryImage expected(48, 48, 0);
  fill_disc(expected, {24, 24}, 10.0);
  EXPECT_GT(iou(res.silhouette, expected), 0.80);
}

TEST(ObjectExtractor, KeepLargestRemovesSecondaryBlobs) {
  const RgbImage bg = studio_background(64, 32);
  RgbImage frame = with_object(bg, {20, 16}, 9.0);
  frame = with_object(frame, {52, 16}, 4.0);  // smaller distractor
  ObjectExtractor ex;
  ex.set_background(bg);
  const BinaryImage sil = ex.silhouette(frame);
  // Nothing of the small blob remains.
  EXPECT_EQ(sil.at(52, 16), 0);
  EXPECT_EQ(sil.at(20, 16), 1);
}

TEST(ObjectExtractor, HoleFillClosesInteriorGaps) {
  const RgbImage bg = studio_background(48, 48);
  RgbImage frame = with_object(bg, {24, 24}, 10.0);
  // Punch a dark hole in the object's middle.
  frame.at(24, 24) = bg.at(24, 24);
  frame.at(25, 24) = bg.at(25, 24);
  ObjectExtractor ex;
  ex.set_background(bg);
  const BinaryImage sil = ex.silhouette(frame);
  EXPECT_EQ(sil.at(24, 24), 1);
}

TEST(ObjectExtractor, WorksUnderBackgroundNoise) {
  const RgbImage bg = studio_background(48, 48, 7, 3.0);
  const RgbImage frame = with_object(studio_background(48, 48, 8, 3.0), {24, 24}, 10.0);
  ObjectExtractor ex;
  ex.set_background(bg);
  BinaryImage expected(48, 48, 0);
  fill_disc(expected, {24, 24}, 10.0);
  EXPECT_GT(iou(ex.silhouette(frame), expected), 0.75);
}

}  // namespace
}  // namespace slj::seg
