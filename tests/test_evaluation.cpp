#include "core/evaluation.hpp"

#include <gtest/gtest.h>

namespace slj::core {
namespace {

using pose::FrameResult;
using pose::PoseId;

ClipEvaluation make_clip_eval(const std::vector<PoseId>& truth,
                              const std::vector<PoseId>& predicted) {
  ClipEvaluation eval;
  eval.frames = truth.size();
  for (std::size_t i = 0; i < truth.size(); ++i) {
    FrameResult r;
    r.pose = predicted[i];
    eval.results.push_back(r);
    eval.truth.push_back(truth[i]);
    if (predicted[i] == truth[i]) ++eval.correct;
    if (predicted[i] == PoseId::kUnknown) ++eval.unknown;
  }
  return eval;
}

TEST(ClipEvaluation, AccuracyMath) {
  const auto eval = make_clip_eval(
      {PoseId::kStandHandsForward, PoseId::kStandHandsForward, PoseId::kCrouchHandsBackward,
       PoseId::kCrouchHandsBackward},
      {PoseId::kStandHandsForward, PoseId::kCrouchHandsBackward, PoseId::kCrouchHandsBackward,
       PoseId::kUnknown});
  EXPECT_DOUBLE_EQ(eval.accuracy(), 0.5);
  EXPECT_EQ(eval.unknown, 1u);
}

TEST(ClipEvaluation, EmptyClipHasZeroAccuracy) {
  ClipEvaluation eval;
  EXPECT_DOUBLE_EQ(eval.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(eval.stage_accuracy(), 0.0);
}

TEST(DatasetEvaluation, AggregatesOverClips) {
  DatasetEvaluation ds;
  ds.clips.push_back(make_clip_eval({PoseId::kStandHandsForward, PoseId::kStandHandsForward},
                                    {PoseId::kStandHandsForward, PoseId::kStandHandsForward}));
  ds.clips.push_back(make_clip_eval({PoseId::kStandHandsForward, PoseId::kStandHandsForward},
                                    {PoseId::kUnknown, PoseId::kStandHandsForward}));
  EXPECT_EQ(ds.total_frames(), 4u);
  EXPECT_EQ(ds.total_correct(), 3u);
  EXPECT_DOUBLE_EQ(ds.overall_accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(ds.min_clip_accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(ds.max_clip_accuracy(), 1.0);
}

TEST(ErrorRuns, FindsConsecutiveErrorBursts) {
  // errors at frames 1,2,3 and 5 → runs of 3 and 1.
  DatasetEvaluation ds;
  ds.clips.push_back(make_clip_eval(
      {PoseId::kStandHandsForward, PoseId::kStandHandsForward, PoseId::kStandHandsForward,
       PoseId::kStandHandsForward, PoseId::kStandHandsForward, PoseId::kStandHandsForward},
      {PoseId::kStandHandsForward, PoseId::kUnknown, PoseId::kUnknown,
       PoseId::kCrouchHandsForward, PoseId::kStandHandsForward, PoseId::kUnknown}));
  const std::vector<int> runs = error_run_lengths(ds);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], 3);
  EXPECT_EQ(runs[1], 1);
}

TEST(ErrorRuns, PerfectClipHasNoRuns) {
  DatasetEvaluation ds;
  ds.clips.push_back(make_clip_eval({PoseId::kStandHandsForward},
                                    {PoseId::kStandHandsForward}));
  EXPECT_TRUE(error_run_lengths(ds).empty());
}

TEST(ErrorRuns, RunsDoNotCrossClipBoundaries) {
  DatasetEvaluation ds;
  ds.clips.push_back(make_clip_eval({PoseId::kStandHandsForward},
                                    {PoseId::kUnknown}));
  ds.clips.push_back(make_clip_eval({PoseId::kStandHandsForward},
                                    {PoseId::kUnknown}));
  const std::vector<int> runs = error_run_lengths(ds);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], 1);
  EXPECT_EQ(runs[1], 1);
}

TEST(ConfusionMatrix, CountsTruthPredictedPairs) {
  DatasetEvaluation ds;
  ds.clips.push_back(make_clip_eval(
      {PoseId::kStandHandsForward, PoseId::kStandHandsForward, PoseId::kCrouchHandsBackward},
      {PoseId::kStandHandsForward, PoseId::kUnknown, PoseId::kStandHandsForward}));
  const ConfusionMatrix m = confusion_matrix(ds);
  const auto idx = [](PoseId p) { return static_cast<std::size_t>(pose::index_of(p)); };
  EXPECT_EQ(m[idx(PoseId::kStandHandsForward)][idx(PoseId::kStandHandsForward)], 1u);
  EXPECT_EQ(m[idx(PoseId::kStandHandsForward)][pose::kPoseCount], 1u);  // Unknown column
  EXPECT_EQ(m[idx(PoseId::kCrouchHandsBackward)][idx(PoseId::kStandHandsForward)], 1u);
}

}  // namespace
}  // namespace slj::core
