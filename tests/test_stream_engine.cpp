#include "core/stream_engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/clip_engine.hpp"
#include "pose/decoders.hpp"
#include "synth/dataset.hpp"

namespace slj::core {
namespace {

using pose::FrameResult;

synth::Clip make_clip(std::uint32_t seed, int frame_count = 16) {
  synth::ClipSpec spec;
  spec.seed = seed;
  spec.frame_count = frame_count;
  return synth::generate_clip(spec);
}

void expect_same_result(const FrameResult& got, const FrameResult& want, std::size_t frame) {
  EXPECT_EQ(got.pose, want.pose) << "frame " << frame;
  EXPECT_EQ(got.best_pose, want.best_pose) << "frame " << frame;
  EXPECT_EQ(got.stage, want.stage) << "frame " << frame;
  EXPECT_EQ(got.candidate_index, want.candidate_index) << "frame " << frame;
  EXPECT_DOUBLE_EQ(got.posterior, want.posterior) << "frame " << frame;
}

/// The acceptance bar: pushing a clip frame-by-frame must yield exactly the
/// batch kOnline results (ClipEngine observation + classify_sequence).
TEST(StreamSession, OnlineMatchesBatchPathFrameForFrame) {
  const pose::PoseDbnClassifier classifier;
  for (const std::uint32_t seed : {3u, 2008u}) {
    const synth::Clip clip = make_clip(seed);

    ClipEngineConfig engine_config;
    engine_config.workers = 4;
    ClipEngine engine({}, engine_config);
    const ClipObservation observation = engine.process(clip);
    const std::vector<FrameResult> batch =
        classifier.classify_sequence(observation.candidate_sets(), observation.airborne);

    StreamSession session(classifier, clip.background);
    for (std::size_t i = 0; i < clip.frames.size(); ++i) {
      const StreamUpdate update = session.push_frame(clip.frames[i]);
      EXPECT_EQ(update.frame_index, i);
      EXPECT_EQ(update.airborne, observation.airborne[i]) << "frame " << i;
      expect_same_result(update.result, batch[i], i);
    }
    EXPECT_EQ(session.frames_seen(), clip.frames.size());
  }
}

TEST(StreamSession, FilteringMatchesBatchDecoder) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(17);

  ClipEngine engine;
  const ClipObservation observation = engine.process(clip);
  const std::vector<FrameResult> batch =
      pose::decode_sequence(classifier, observation.candidate_sets(), observation.airborne,
                            pose::SequenceDecoder::kFiltering);

  StreamSessionConfig config;
  config.decoder = StreamDecoder::kFiltering;
  StreamSession session(classifier, clip.background, {}, config);
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    expect_same_result(session.push_frame(clip.frames[i]).result, batch[i], i);
  }
}

TEST(StreamSession, TrackerModeMatchesSerialTrackedLoop) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(31);

  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  detect::BlobTracker tracker;
  GroundMonitor ground;
  pose::PoseDbnClassifier::SequenceState state = classifier.initial_state();

  StreamSessionConfig config;
  config.use_tracker = true;
  StreamSession session(classifier, clip.background, {}, config);
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    const FrameObservation obs = pipeline.process(clip.frames[i], tracker);
    const bool airborne = ground.airborne(obs.bottom_row);
    const FrameResult want = classifier.classify(obs.candidates, airborne, state);
    const StreamUpdate update = session.push_frame(clip.frames[i]);
    EXPECT_EQ(update.airborne, airborne) << "frame " << i;
    expect_same_result(update.result, want, i);
  }
}

TEST(StreamSession, PushObservationMatchesPushFrame) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(7, 8);
  FramePipeline pipeline;
  pipeline.set_background(clip.background);

  StreamSession by_frame(classifier, clip.background);
  StreamSession by_observation(classifier, clip.background);
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    const StreamUpdate a = by_frame.push_frame(clip.frames[i]);
    const StreamUpdate b = by_observation.push_observation(pipeline.process(clip.frames[i]));
    EXPECT_EQ(a.airborne, b.airborne) << "frame " << i;
    expect_same_result(a.result, b.result, i);
  }
}

TEST(StreamSession, ReportMatchesBatchDetectFaults) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(11);

  StreamSession session(classifier, clip.background);
  std::vector<FrameResult> results;
  std::size_t resolved_events = 0;
  for (const RgbImage& frame : clip.frames) {
    const StreamUpdate update = session.push_frame(frame);
    results.push_back(update.result);
    resolved_events += update.resolved.size();
  }
  const JumpReport live = session.report();
  const JumpReport batch = detect_faults(results);
  ASSERT_EQ(live.findings.size(), batch.findings.size());
  for (std::size_t i = 0; i < live.findings.size(); ++i) {
    EXPECT_EQ(live.findings[i].rule, batch.findings[i].rule);
    EXPECT_EQ(live.findings[i].passed, batch.findings[i].passed);
    EXPECT_EQ(live.findings[i].evidence_frames, batch.findings[i].evidence_frames);
  }

  // Rules resolve at most once mid-stream; finish() settles the rest and
  // its report agrees with the batch outcome.
  EXPECT_LE(resolved_events, 6u);
  const JumpReport final_report = session.finish();
  EXPECT_EQ(final_report.total_count(), 6);
  EXPECT_EQ(final_report.passed_count(), batch.passed_count());
}

TEST(StreamManager, TickMatchesIndividualSessions) {
  const pose::PoseDbnClassifier classifier;
  const std::vector<synth::Clip> clips = {make_clip(21), make_clip(22), make_clip(23)};

  StreamManagerConfig config;
  config.workers = 4;
  StreamManager manager(classifier, {}, config);
  std::vector<int> ids;
  std::vector<StreamSession> reference;
  for (const synth::Clip& clip : clips) {
    ids.push_back(manager.open_session(clip.background));
    reference.emplace_back(classifier, clip.background);
  }
  EXPECT_EQ(manager.open_sessions(), clips.size());

  const std::size_t frames = clips.front().frames.size();
  for (std::size_t t = 0; t < frames; ++t) {
    std::vector<StreamManager::Feed> feeds;
    for (std::size_t s = 0; s < clips.size(); ++s) {
      feeds.push_back({ids[s], &clips[s].frames[t]});
    }
    const std::vector<StreamUpdate> updates = manager.tick(feeds);
    ASSERT_EQ(updates.size(), feeds.size());
    for (std::size_t s = 0; s < clips.size(); ++s) {
      const StreamUpdate want = reference[s].push_frame(clips[s].frames[t]);
      EXPECT_EQ(updates[s].airborne, want.airborne) << "session " << s << " frame " << t;
      expect_same_result(updates[s].result, want.result, t);
    }
  }

  for (std::size_t s = 0; s < clips.size(); ++s) {
    const JumpReport got = manager.close_session(ids[s]);
    const JumpReport want = reference[s].finish();
    ASSERT_EQ(got.findings.size(), want.findings.size());
    for (std::size_t i = 0; i < got.findings.size(); ++i) {
      EXPECT_EQ(got.findings[i].passed, want.findings[i].passed) << "session " << s;
    }
  }
  EXPECT_EQ(manager.open_sessions(), 0u);
}

TEST(StreamManager, RejectsBadFeeds) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(5, 4);
  StreamManager manager(classifier);
  const int id = manager.open_session(clip.background);

  EXPECT_THROW(manager.push_frame(id + 1, clip.frames[0]), std::invalid_argument);
  EXPECT_THROW(manager.push_frame(-1, clip.frames[0]), std::invalid_argument);
  EXPECT_THROW(manager.tick({{id, &clip.frames[0]}, {id, &clip.frames[1]}}),
               std::invalid_argument);
  EXPECT_THROW(manager.tick({{id, nullptr}}), std::invalid_argument);

  manager.close_session(id);
  EXPECT_THROW(manager.push_frame(id, clip.frames[0]), std::invalid_argument);
  EXPECT_THROW(manager.close_session(id), std::invalid_argument);
}

/// The documented tick contract: a rejected batch (duplicate session id
/// here) throws *before any session advances*, and tick_into into a reused
/// buffer yields exactly the same updates as tick().
TEST(StreamManager, RejectedBatchAdvancesNothingAndTickIntoMatchesTick) {
  const pose::PoseDbnClassifier classifier;
  const synth::Clip clip = make_clip(13, 6);
  StreamManager manager(classifier);
  StreamSession reference(classifier, clip.background);
  const int id = manager.open_session(clip.background);

  std::vector<StreamUpdate> updates;
  for (std::size_t t = 0; t < clip.frames.size(); ++t) {
    // Every round first offers an invalid batch listing the session twice;
    // the throw must leave the session un-advanced...
    EXPECT_THROW(
        manager.tick_into({{id, &clip.frames[t]}, {id, &clip.frames[t]}}, updates),
        std::invalid_argument);
    // ...so the valid batch that follows still sees frames in order.
    manager.tick_into({{id, &clip.frames[t]}}, updates);
    ASSERT_EQ(updates.size(), 1u);
    EXPECT_EQ(updates[0].frame_index, t);
    expect_same_result(updates[0].result, reference.push_frame(clip.frames[t]).result, t);
  }
  manager.close_session(id);
}

TEST(StreamManager, EmptyTickIsANoOp) {
  const pose::PoseDbnClassifier classifier;
  StreamManager manager(classifier);
  EXPECT_TRUE(manager.tick({}).empty());
}

}  // namespace
}  // namespace slj::core
