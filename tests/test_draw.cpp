#include "imaging/draw.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace slj {
namespace {

TEST(FillDisc, AreaIsApproximatelyPiRSquared) {
  BinaryImage img(64, 64, 0);
  fill_disc(img, {32, 32}, 10.0);
  const double area = static_cast<double>(count_foreground(img));
  const double expected = 3.14159265358979 * 100.0;
  EXPECT_NEAR(area, expected, expected * 0.08);
}

TEST(FillDisc, ClipsAtImageBorder) {
  BinaryImage img(10, 10, 0);
  fill_disc(img, {0, 0}, 5.0);  // three quarters outside
  EXPECT_GT(count_foreground(img), 0u);
  EXPECT_LT(count_foreground(img), 80u);
  EXPECT_EQ(img.at(0, 0), 1);
}

TEST(FillDisc, ZeroRadiusMarksCentrePixelOnly) {
  BinaryImage img(5, 5, 0);
  fill_disc(img, {2, 2}, 0.0);
  EXPECT_EQ(count_foreground(img), 1u);
  EXPECT_EQ(img.at(2, 2), 1);
}

TEST(FillCapsule, CoversSegmentAndRoundEnds) {
  BinaryImage img(40, 20, 0);
  fill_capsule(img, {5, 10}, {35, 10}, 3.0);
  // Every pixel on the segment is covered.
  for (int x = 5; x <= 35; ++x) EXPECT_EQ(img.at(x, 10), 1) << x;
  // Ends are rounded: pixel just beyond the tip within radius is covered.
  EXPECT_EQ(img.at(3, 10), 1);
  EXPECT_EQ(img.at(37, 10), 1);
  // Outside the radius is not.
  EXPECT_EQ(img.at(5, 15), 0);
}

TEST(FillCapsule, DegenerateSegmentIsDisc) {
  BinaryImage cap(20, 20, 0);
  BinaryImage disc(20, 20, 0);
  fill_capsule(cap, {10, 10}, {10, 10}, 4.0);
  fill_disc(disc, {10, 10}, 4.0);
  EXPECT_EQ(cap, disc);
}

TEST(FillConvexPolygon, FillsTriangle) {
  BinaryImage img(20, 20, 0);
  const std::array<PointF, 3> tri = {{{2, 2}, {17, 2}, {2, 17}}};
  fill_convex_polygon(img, tri);
  EXPECT_EQ(img.at(3, 3), 1);
  EXPECT_EQ(img.at(16, 16), 0);  // outside the hypotenuse
  EXPECT_GT(count_foreground(img), 90u);
}

TEST(FillConvexPolygon, TooFewVerticesIsNoOp) {
  BinaryImage img(10, 10, 0);
  const std::array<PointF, 2> seg = {{{1, 1}, {8, 8}}};
  fill_convex_polygon(img, seg);
  EXPECT_EQ(count_foreground(img), 0u);
}

TEST(DrawLine, HorizontalVerticalDiagonal) {
  GrayImage img(10, 10, 0);
  draw_line(img, {0, 0}, {9, 0}, 255);
  for (int x = 0; x < 10; ++x) EXPECT_EQ(img.at(x, 0), 255);
  img.fill(0);
  draw_line(img, {3, 0}, {3, 9}, 255);
  for (int y = 0; y < 10; ++y) EXPECT_EQ(img.at(3, y), 255);
  img.fill(0);
  draw_line(img, {0, 0}, {9, 9}, 255);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(img.at(i, i), 255);
}

TEST(DrawLine, ClipsOutOfBoundsEndpoints) {
  GrayImage img(5, 5, 0);
  draw_line(img, {-3, 2}, {8, 2}, 200);  // crosses the image
  for (int x = 0; x < 5; ++x) EXPECT_EQ(img.at(x, 2), 200);
}

TEST(DrawMarker, PaintsSquare) {
  RgbImage img(9, 9, Rgb{0, 0, 0});
  draw_marker(img, {4, 4}, 1, Rgb{255, 0, 0});
  int painted = 0;
  for (const Rgb& p : img.data()) painted += p.r == 255 ? 1 : 0;
  EXPECT_EQ(painted, 9);
}

}  // namespace
}  // namespace slj
