#include "pose/skeleton_features.hpp"

#include <gtest/gtest.h>

#include "skelgraph/skeleton_graph.hpp"

namespace slj::pose {
namespace {

using skel::Edge;
using skel::Node;
using skel::NodeType;
using skel::SkeletonGraph;

/// Stick figure graph: head on top, junction at the shoulders, one hand
/// branch, junction at hip, knee bend, foot at the bottom.
///
///        head (50,10)
///          |
///   hand --+ shoulders (50,30) -- hand end (75,35)
///          |
///        hip (50,60)
///          |
///        knee (55,80)
///          |
///        foot (50,100)
struct Figure {
  SkeletonGraph graph;
  int head, shoulders, hand, hip, knee, foot;
};

Figure stick_figure() {
  Figure f;
  auto add = [&](PointI pos, NodeType type) {
    Node n;
    n.pos = pos;
    n.type = type;
    n.cluster = {pos};
    return f.graph.add_node(n);
  };
  f.head = add({50, 10}, NodeType::kEnd);
  f.shoulders = add({50, 30}, NodeType::kJunction);
  f.hand = add({75, 35}, NodeType::kEnd);
  f.hip = add({50, 60}, NodeType::kJunction);
  f.knee = add({55, 80}, NodeType::kBend);
  f.foot = add({50, 100}, NodeType::kEnd);

  auto connect = [&](int a, int b) {
    Edge e;
    e.a = a;
    e.b = b;
    const PointI pa = f.graph.node(a).pos;
    const PointI pb = f.graph.node(b).pos;
    // Straightline path with intermediate pixels for arc-length math.
    const int steps = std::max(std::abs(pa.x - pb.x), std::abs(pa.y - pb.y));
    for (int i = 0; i <= steps; ++i) {
      e.path.push_back({pa.x + (pb.x - pa.x) * i / steps, pa.y + (pb.y - pa.y) * i / steps});
    }
    f.graph.add_edge(e);
  };
  connect(f.head, f.shoulders);
  connect(f.shoulders, f.hand);
  connect(f.shoulders, f.hip);
  connect(f.hip, f.knee);
  connect(f.knee, f.foot);
  return f;
}

TEST(NearestNode, FindsClosestAliveNode) {
  const Figure f = stick_figure();
  EXPECT_EQ(nearest_node(f.graph, {51, 12}), f.head);
  EXPECT_EQ(nearest_node(f.graph, {70, 34}), f.hand);
  EXPECT_EQ(nearest_node(f.graph, {50, 99}), f.foot);
}

TEST(NearestNode, EmptyGraphGivesMinusOne) {
  SkeletonGraph g;
  EXPECT_EQ(nearest_node(g, {0, 0}), -1);
}

TEST(EstimateTorso, PathMidpointIsWaist) {
  const Figure f = stick_figure();
  const TorsoEstimate torso = estimate_torso(f.graph, f.head, f.foot);
  EXPECT_TRUE(torso.connected);
  // Head→foot pixel-path length: 20 + 30 + (5·√2 + 15)·2 ≈ 94.14 (the leg
  // segments are rasterised as diagonal steps plus a straight run).
  EXPECT_NEAR(torso.path_length, 94.14, 0.5);
  // Waist at half the arc (≈47.07 from the head): 20 px down the neck
  // segment plus ≈27.07 of the 30 px shoulders→hip segment → y ≈ 57.
  EXPECT_NEAR(torso.waist.x, 50.0, 1.5);
  EXPECT_NEAR(torso.waist.y, 57.1, 2.0);
}

TEST(EstimateTorso, DisconnectedFallsBackToStraightMidpoint) {
  SkeletonGraph g;
  Node a, b;
  a.pos = {0, 0};
  b.pos = {10, 10};
  a.type = b.type = NodeType::kEnd;
  const int ia = g.add_node(a);
  const int ib = g.add_node(b);  // no edges at all
  const TorsoEstimate torso = estimate_torso(g, ia, ib);
  EXPECT_FALSE(torso.connected);
  EXPECT_DOUBLE_EQ(torso.waist.x, 5.0);
  EXPECT_DOUBLE_EQ(torso.waist.y, 5.0);
}

TEST(EstimateTorso, SameNodeIsItsOwnWaist) {
  const Figure f = stick_figure();
  const TorsoEstimate torso = estimate_torso(f.graph, f.head, f.head);
  EXPECT_TRUE(torso.connected);
  EXPECT_DOUBLE_EQ(torso.waist.x, 50.0);
  EXPECT_DOUBLE_EQ(torso.waist.y, 10.0);
}

TEST(EnumerateCandidates, EmptyGraphGivesNothing) {
  SkeletonGraph g;
  const AreaEncoder enc(8);
  EXPECT_TRUE(enumerate_candidates(g, enc).empty());
}

TEST(EnumerateCandidates, FootIsLowestKeyPoint) {
  const Figure f = stick_figure();
  const AreaEncoder enc(8);
  const auto candidates = enumerate_candidates(f.graph, enc);
  ASSERT_FALSE(candidates.empty());
  for (const FeatureCandidate& c : candidates) {
    EXPECT_EQ(c.nodes[static_cast<std::size_t>(Part::kFoot)], f.foot);
  }
}

TEST(EnumerateCandidates, GeometricAssignmentFindsAllParts) {
  const Figure f = stick_figure();
  const AreaEncoder enc(8);
  const auto candidates = enumerate_candidates(f.graph, enc);
  ASSERT_FALSE(candidates.empty());
  // The top-priority head candidate is the true head (topmost end node).
  const FeatureCandidate& c = candidates.front();
  EXPECT_EQ(c.nodes[static_cast<std::size_t>(Part::kHead)], f.head);
  EXPECT_EQ(c.nodes[static_cast<std::size_t>(Part::kHand)], f.hand);
  EXPECT_EQ(c.nodes[static_cast<std::size_t>(Part::kKnee)], f.knee);
  EXPECT_EQ(c.nodes[static_cast<std::size_t>(Part::kChest)], f.shoulders);
}

TEST(EnumerateCandidates, OccupancyCoversAllKeyPointAreas) {
  const Figure f = stick_figure();
  const AreaEncoder enc(8);
  const auto candidates = enumerate_candidates(f.graph, enc);
  ASSERT_FALSE(candidates.empty());
  const FeatureCandidate& c = candidates.front();
  ASSERT_EQ(c.occupancy.size(), 8u);
  // Each alive node's area must be flagged occupied.
  for (const Node& n : f.graph.nodes()) {
    if (!n.alive) continue;
    const int a = enc.area_of(to_f(n.pos), c.waist);
    EXPECT_TRUE(c.occupancy[static_cast<std::size_t>(a)]);
  }
}

TEST(EnumerateCandidates, FullAssignmentExplainsEverything) {
  const Figure f = stick_figure();
  const AreaEncoder enc(8);
  const auto candidates = enumerate_candidates(f.graph, enc);
  // All six nodes are assigned or colinear with assigned areas; with 5
  // parts for 6 nodes, at most one area can be left unexplained.
  EXPECT_LE(candidates.front().unexplained_areas, 1);
}

TEST(EnumerateCandidates, SingleNodeGraphGivesFootOnlyCandidate) {
  SkeletonGraph g;
  Node n;
  n.pos = {5, 5};
  n.type = NodeType::kIsolated;
  g.add_node(n);
  const AreaEncoder enc(8);
  const auto candidates = enumerate_candidates(g, enc);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_GE(candidates.front().nodes[static_cast<std::size_t>(Part::kFoot)], 0);
  EXPECT_EQ(candidates.front().features[Part::kHead], enc.missing_state());
}

TEST(FeaturesFromTruth, PicksHeadNearestGroundTruth) {
  const Figure f = stick_figure();
  const AreaEncoder enc(8);
  PartPoints truth;
  truth.head = {50, 8};
  truth.chest = {50, 32};
  truth.hand = {76, 36};
  truth.knee = {56, 81};
  truth.foot = {50, 102};
  const auto c = features_from_truth(f.graph, enc, truth);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->nodes[static_cast<std::size_t>(Part::kHead)], f.head);
  EXPECT_EQ(c->nodes[static_cast<std::size_t>(Part::kFoot)], f.foot);
}

TEST(FeaturesFromTruth, EmptyGraphGivesNullopt) {
  SkeletonGraph g;
  const AreaEncoder enc(8);
  EXPECT_FALSE(features_from_truth(g, enc, PartPoints{}).has_value());
}

TEST(FeaturesFromTruth, MatchesSomeEnumeratedCandidate) {
  // Train/test consistency: the training features are one of the test-time
  // candidates.
  const Figure f = stick_figure();
  const AreaEncoder enc(8);
  PartPoints truth;
  truth.head = {50, 10};
  truth.foot = {50, 100};
  const auto c = features_from_truth(f.graph, enc, truth);
  ASSERT_TRUE(c.has_value());
  bool found = false;
  for (const FeatureCandidate& cand : enumerate_candidates(f.graph, enc)) {
    if (cand.features == c->features) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace slj::pose
