#include "detection/blob_tracker.hpp"

#include <gtest/gtest.h>

#include "imaging/draw.hpp"

namespace slj::detect {
namespace {

/// A person-sized blob: a 12×40 rectangle at (x, y) top-left.
BinaryImage person_at(int x, int y, int w = 140, int h = 90) {
  BinaryImage img(w, h, 0);
  for (int yy = y; yy < y + 40 && yy < h; ++yy) {
    for (int xx = x; xx < x + 12 && xx < w; ++xx) {
      if (yy >= 0 && xx >= 0) img.at(xx, yy) = 1;
    }
  }
  return img;
}

TrackerConfig fast_confirm() {
  TrackerConfig cfg;
  cfg.confirm_after = 1;
  return cfg;
}

TEST(PersonModel, RejectsTooSmallAndTooElongated) {
  BlobTracker tracker;
  ComponentStats speck;
  speck.area = 10;
  speck.min = {0, 0};
  speck.max = {3, 3};
  EXPECT_FALSE(tracker.is_person_like(speck));

  ComponentStats wire;
  wire.area = 600;
  wire.min = {0, 0};
  wire.max = {140, 3};  // 141 wide, 4 tall
  EXPECT_FALSE(tracker.is_person_like(wire));

  ComponentStats person;
  person.area = 480;
  person.min = {10, 10};
  person.max = {21, 49};  // 12 × 40
  EXPECT_TRUE(tracker.is_person_like(person));
}

TEST(BlobTracker, EmptyFrameHasNoTrack) {
  BlobTracker tracker;
  const TrackResult r = tracker.update(BinaryImage(100, 80, 0));
  EXPECT_EQ(r.state, TrackState::kNone);
  EXPECT_FALSE(r.person_present);
  EXPECT_FALSE(r.measured);
}

TEST(BlobTracker, ConfirmsAfterPersistentDetections) {
  BlobTracker tracker(fast_confirm());
  TrackResult r = tracker.update(person_at(20, 30));
  EXPECT_EQ(r.state, TrackState::kTentative);
  EXPECT_FALSE(r.person_present);
  r = tracker.update(person_at(22, 30));
  EXPECT_EQ(r.state, TrackState::kConfirmed);
  EXPECT_TRUE(r.person_present);
  EXPECT_TRUE(r.measured);
}

TEST(BlobTracker, FollowsMovingBlob) {
  BlobTracker tracker(fast_confirm());
  for (int step = 0; step < 8; ++step) {
    const TrackResult r = tracker.update(person_at(10 + step * 6, 30));
    if (step >= 2) {
      EXPECT_TRUE(r.person_present) << "step " << step;
      EXPECT_NEAR(r.centroid.x, 10 + step * 6 + 5.5, 1.0);
    }
  }
}

TEST(BlobTracker, VelocityEstimateTracksMotion) {
  BlobTracker tracker(fast_confirm());
  for (int step = 0; step < 10; ++step) tracker.update(person_at(10 + step * 5, 30));
  TrackResult r = tracker.update(person_at(60, 30));
  // Average horizontal speed ~5 px/frame (the last update moved backward a
  // touch, so allow slack).
  EXPECT_GT(r.velocity.x, 1.0);
}

TEST(BlobTracker, CoastsThroughShortDropouts) {
  BlobTracker tracker(fast_confirm());
  for (int step = 0; step < 4; ++step) tracker.update(person_at(10 + step * 6, 30));
  // Two empty frames: the track coasts on its velocity.
  TrackResult r = tracker.update(BinaryImage(140, 90, 0));
  EXPECT_EQ(r.state, TrackState::kCoasting);
  EXPECT_TRUE(r.person_present);
  r = tracker.update(BinaryImage(140, 90, 0));
  EXPECT_EQ(r.state, TrackState::kCoasting);
  // Reappears close to the prediction: re-confirmed.
  r = tracker.update(person_at(10 + 6 * 6, 30));
  EXPECT_EQ(r.state, TrackState::kConfirmed);
}

TEST(BlobTracker, DropsTrackAfterLongDropout) {
  TrackerConfig cfg = fast_confirm();
  cfg.max_misses = 2;
  BlobTracker tracker(cfg);
  for (int step = 0; step < 4; ++step) tracker.update(person_at(20, 30));
  for (int i = 0; i < 3; ++i) tracker.update(BinaryImage(140, 90, 0));
  EXPECT_EQ(tracker.state(), TrackState::kNone);
}

TEST(BlobTracker, GateRejectsTeleportingBlob) {
  BlobTracker tracker(fast_confirm());
  for (int step = 0; step < 3; ++step) tracker.update(person_at(10, 30));
  // The only blob jumps across the frame, far outside the gate.
  const TrackResult r = tracker.update(person_at(120, 30, 200, 90));
  EXPECT_FALSE(r.measured);
  EXPECT_EQ(r.state, TrackState::kCoasting);
}

TEST(BlobTracker, PicksTrackedBlobNotLargest) {
  BlobTracker tracker(fast_confirm());
  for (int step = 0; step < 3; ++step) tracker.update(person_at(20, 30, 220, 90));
  // A bigger distractor person enters far away; the track must stay on the
  // original blob.
  BinaryImage both(220, 90, 0);
  for (int y = 30; y < 70; ++y) {
    for (int x = 20; x < 32; ++x) both.at(x, y) = 1;      // tracked person
    for (int x = 160; x < 180; ++x) both.at(x, y) = 1;    // larger distractor
  }
  const TrackResult r = tracker.update(both);
  ASSERT_TRUE(r.measured);
  EXPECT_NEAR(r.centroid.x, 25.5, 2.0);
  // The output mask contains only the tracked blob.
  EXPECT_EQ(r.mask.at(165, 40), 0);
  EXPECT_EQ(r.mask.at(25, 40), 1);
}

TEST(BlobTracker, MaskMatchesBlobExactly) {
  BlobTracker tracker(fast_confirm());
  tracker.update(person_at(20, 30));
  const TrackResult r = tracker.update(person_at(20, 30));
  ASSERT_TRUE(r.measured);
  EXPECT_EQ(count_foreground(r.mask), r.blob.area);
}

TEST(BlobTracker, ResetForgetsEverything) {
  BlobTracker tracker(fast_confirm());
  for (int step = 0; step < 3; ++step) tracker.update(person_at(20, 30));
  tracker.reset();
  EXPECT_EQ(tracker.state(), TrackState::kNone);
  const TrackResult r = tracker.update(person_at(20, 30));
  EXPECT_EQ(r.state, TrackState::kTentative);
}

}  // namespace
}  // namespace slj::detect

namespace slj::detect {
namespace {

TEST(BlobTracker, StartHintPicksBlobAtTheTakeoffLine) {
  // Two person-like blobs; the hint selects the smaller one at the line.
  TrackerConfig cfg;
  cfg.confirm_after = 1;
  cfg.start_x_hint = 26.0;
  BlobTracker tracker(cfg);
  BinaryImage both(220, 90, 0);
  for (int y = 30; y < 70; ++y) {
    for (int x = 20; x < 32; ++x) both.at(x, y) = 1;    // at the line
    for (int x = 160; x < 180; ++x) both.at(x, y) = 1;  // bigger, far away
  }
  const TrackResult r = tracker.update(both);
  ASSERT_TRUE(r.measured);
  EXPECT_NEAR(r.centroid.x, 25.5, 2.0);
}

TEST(BlobTracker, WithoutHintLargestWins) {
  TrackerConfig cfg;
  cfg.confirm_after = 1;
  BlobTracker tracker(cfg);
  BinaryImage both(220, 90, 0);
  for (int y = 30; y < 70; ++y) {
    for (int x = 20; x < 32; ++x) both.at(x, y) = 1;
    for (int x = 160; x < 180; ++x) both.at(x, y) = 1;
  }
  const TrackResult r = tracker.update(both);
  ASSERT_TRUE(r.measured);
  EXPECT_NEAR(r.centroid.x, 169.5, 2.0);
}

}  // namespace
}  // namespace slj::detect
