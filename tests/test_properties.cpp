// Cross-module property sweeps on rendered jump frames: invariants that
// must hold for ANY frame of ANY clip, parameterized over seeds and frame
// positions.
#include <gtest/gtest.h>

#include <map>

#include "core/pipeline.hpp"
#include "imaging/connected.hpp"
#include "imaging/morphology.hpp"
#include "synth/dataset.hpp"
#include "thinning/zhang_suen.hpp"

namespace slj {
namespace {

struct Case {
  std::uint32_t seed;
  int frame;
};

class PipelineInvariants : public ::testing::TestWithParam<Case> {
 protected:
  static const synth::Clip& clip_for(std::uint32_t seed) {
    static std::map<std::uint32_t, synth::Clip> cache;
    auto it = cache.find(seed);
    if (it == cache.end()) {
      synth::ClipSpec spec;
      spec.seed = seed;
      spec.frame_count = 40;
      it = cache.emplace(seed, synth::generate_clip(spec)).first;
    }
    return it->second;
  }
};

TEST_P(PipelineInvariants, SilhouetteIsOneSolidComponent) {
  const auto [seed, frame] = GetParam();
  const synth::Clip& clip = clip_for(seed);
  core::FramePipeline pipeline;
  pipeline.set_background(clip.background);
  const auto obs = pipeline.process(clip.frames[static_cast<std::size_t>(frame)]);
  EXPECT_EQ(component_count(obs.silhouette), 1u);
  // Hole-filled: filling again changes nothing.
  EXPECT_EQ(fill_holes(obs.silhouette), obs.silhouette);
}

TEST_P(PipelineInvariants, SkeletonPreservesConnectivityAndSubset) {
  const auto [seed, frame] = GetParam();
  const synth::Clip& clip = clip_for(seed);
  core::FramePipeline pipeline;
  pipeline.set_background(clip.background);
  const auto obs = pipeline.process(clip.frames[static_cast<std::size_t>(frame)]);
  EXPECT_EQ(component_count(obs.raw_skeleton), component_count(obs.silhouette));
  for (std::size_t i = 0; i < obs.raw_skeleton.size(); ++i) {
    if (obs.raw_skeleton.data()[i]) EXPECT_TRUE(obs.silhouette.data()[i]);
  }
}

TEST_P(PipelineInvariants, CleanedGraphIsAForest) {
  const auto [seed, frame] = GetParam();
  const synth::Clip& clip = clip_for(seed);
  core::FramePipeline pipeline;
  pipeline.set_background(clip.background);
  const auto obs = pipeline.process(clip.frames[static_cast<std::size_t>(frame)]);
  EXPECT_EQ(obs.graph.cycle_count(), 0u);
  // No surviving leaf BRANCH (end node -> nearest junction, walked through
  // any bend vertices the piecewise-linear split added) shorter than the
  // pruning threshold.
  for (const auto& n : obs.graph.nodes()) {
    if (!n.alive || obs.graph.degree(n.id) != 1) continue;
    int vertices = 1;
    int cur = n.id;
    int via_edge = -1;
    while (true) {
      const auto incident = obs.graph.incident_edges(cur);
      int next_edge = -1;
      for (const int eid : incident) {
        if (eid != via_edge) next_edge = eid;
      }
      if (next_edge < 0) break;
      const auto& e = obs.graph.edge(next_edge);
      vertices += static_cast<int>(e.path.size()) - 1;
      cur = e.a == cur ? e.b : e.a;
      via_edge = next_edge;
      if (obs.graph.degree(cur) != 2) break;  // junction or another end
    }
    // An isolated end-to-end path is the whole skeleton, exempt like in the
    // pruner; anchored branches must meet the threshold.
    if (obs.graph.degree(cur) >= 3) {
      EXPECT_GE(vertices, pipeline.params().min_branch_vertices) << "leaf node " << n.id;
    }
  }
}

TEST_P(PipelineInvariants, CandidatesAreWellFormed) {
  const auto [seed, frame] = GetParam();
  const synth::Clip& clip = clip_for(seed);
  core::FramePipeline pipeline;
  pipeline.set_background(clip.background);
  const auto obs = pipeline.process(clip.frames[static_cast<std::size_t>(frame)]);
  const auto& enc = pipeline.encoder();
  for (const auto& c : obs.candidates) {
    for (int i = 0; i < pose::kPartCount; ++i) {
      const int a = c.features.areas[static_cast<std::size_t>(i)];
      EXPECT_GE(a, 0);
      EXPECT_LE(a, enc.missing_state());
      // Assigned parts never carry the missing code, and vice versa.
      EXPECT_EQ(c.nodes[static_cast<std::size_t>(i)] >= 0, a != enc.missing_state());
    }
    EXPECT_EQ(c.occupancy.size(), static_cast<std::size_t>(enc.num_areas()));
    EXPECT_GE(c.unexplained_areas, 0);
    // Every assigned part's area is occupied.
    for (int i = 0; i < pose::kPartCount; ++i) {
      const int a = c.features.areas[static_cast<std::size_t>(i)];
      if (a < enc.num_areas()) EXPECT_TRUE(c.occupancy[static_cast<std::size_t>(a)]);
    }
  }
}

TEST_P(PipelineInvariants, FootIsLowestAssignedPart) {
  const auto [seed, frame] = GetParam();
  const synth::Clip& clip = clip_for(seed);
  core::FramePipeline pipeline;
  pipeline.set_background(clip.background);
  const auto obs = pipeline.process(clip.frames[static_cast<std::size_t>(frame)]);
  for (const auto& c : obs.candidates) {
    const int foot = c.nodes[static_cast<std::size_t>(pose::Part::kFoot)];
    ASSERT_GE(foot, 0);
    const int foot_y = obs.graph.node(foot).pos.y;
    for (int i = 0; i < pose::kPartCount; ++i) {
      const int node = c.nodes[static_cast<std::size_t>(i)];
      if (node >= 0) EXPECT_LE(obs.graph.node(node).pos.y, foot_y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndFrames, PipelineInvariants,
                         ::testing::Values(Case{11, 2}, Case{11, 14}, Case{11, 24},
                                           Case{11, 36}, Case{57, 5}, Case{57, 20},
                                           Case{57, 33}, Case{91, 10}, Case{91, 28},
                                           Case{91, 39}));

}  // namespace
}  // namespace slj
