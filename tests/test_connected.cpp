#include "imaging/connected.hpp"

#include <gtest/gtest.h>

namespace slj {
namespace {

TEST(LabelComponents, EmptyImageHasNoComponents) {
  const Labeling lab = label_components(BinaryImage(5, 5, 0));
  EXPECT_TRUE(lab.components.empty());
}

TEST(LabelComponents, SingleBlobStats) {
  BinaryImage img(6, 6, 0);
  for (int y = 2; y <= 3; ++y) {
    for (int x = 1; x <= 4; ++x) img.at(x, y) = 1;
  }
  const Labeling lab = label_components(img);
  ASSERT_EQ(lab.components.size(), 1u);
  const ComponentStats& c = lab.components.front();
  EXPECT_EQ(c.area, 8u);
  EXPECT_EQ(c.min, (PointI{1, 2}));
  EXPECT_EQ(c.max, (PointI{4, 3}));
  EXPECT_DOUBLE_EQ(c.centroid.x, 2.5);
  EXPECT_DOUBLE_EQ(c.centroid.y, 2.5);
}

TEST(LabelComponents, DiagonalTouchMergesOnlyWith8Connectivity) {
  BinaryImage img(4, 4, 0);
  img.at(0, 0) = 1;
  img.at(1, 1) = 1;
  EXPECT_EQ(label_components(img, true).components.size(), 1u);
  EXPECT_EQ(label_components(img, false).components.size(), 2u);
}

TEST(LabelComponents, SeparateBlobsGetDistinctLabels) {
  BinaryImage img(7, 3, 0);
  img.at(0, 0) = 1;
  img.at(3, 1) = 1;
  img.at(6, 2) = 1;
  const Labeling lab = label_components(img);
  ASSERT_EQ(lab.components.size(), 3u);
  EXPECT_NE(lab.labels.at(0, 0), lab.labels.at(3, 1));
  EXPECT_NE(lab.labels.at(3, 1), lab.labels.at(6, 2));
}

TEST(LabelComponents, BackgroundIsZero) {
  BinaryImage img(3, 3, 0);
  img.at(1, 1) = 1;
  const Labeling lab = label_components(img);
  EXPECT_EQ(lab.labels.at(0, 0), 0);
  EXPECT_GT(lab.labels.at(1, 1), 0);
}

TEST(LargestComponent, KeepsOnlyBiggest) {
  BinaryImage img(10, 3, 0);
  // Big blob: 6 pixels; small blob: 2.
  for (int x = 0; x < 6; ++x) img.at(x, 0) = 1;
  img.at(8, 2) = img.at(9, 2) = 1;
  const BinaryImage out = largest_component(img);
  EXPECT_EQ(count_foreground(out), 6u);
  EXPECT_EQ(out.at(8, 2), 0);
  EXPECT_EQ(out.at(0, 0), 1);
}

TEST(LargestComponent, EmptyInputGivesEmptyMask) {
  const BinaryImage out = largest_component(BinaryImage(4, 4, 0));
  EXPECT_EQ(count_foreground(out), 0u);
}

TEST(ComponentCount, CountsBoth) {
  BinaryImage img(5, 5, 0);
  img.at(0, 0) = 1;
  img.at(4, 4) = 1;
  EXPECT_EQ(component_count(img), 2u);
}

}  // namespace
}  // namespace slj
