#include <gtest/gtest.h>

#include <sstream>

#include "pose/classifier.hpp"

namespace slj::pose {
namespace {

FeatureCandidate make_candidate(const AreaEncoder& enc, int head, int hand, int foot) {
  FeatureCandidate c;
  c.features[Part::kHead] = head;
  c.features[Part::kChest] = enc.missing_state();
  c.features[Part::kHand] = hand;
  c.features[Part::kKnee] = enc.missing_state();
  c.features[Part::kFoot] = foot;
  c.nodes = {0, -1, 1, -1, 2};
  c.occupancy.assign(static_cast<std::size_t>(enc.num_areas()), 0);
  for (const int a : c.features.areas) {
    if (a < enc.num_areas()) c.occupancy[static_cast<std::size_t>(a)] = 1;
  }
  return c;
}

PoseDbnClassifier trained() {
  ClassifierConfig cfg;
  cfg.th_pose = 0.31;
  cfg.laplace_alpha = 0.4;
  PoseDbnClassifier clf(cfg);
  const AreaEncoder& enc = clf.encoder();
  for (int i = 0; i < 30; ++i) {
    clf.observe(PoseId::kStandHandsForward, make_candidate(enc, 2, 0, 6),
                PoseId::kStandHandsForward, Stage::kBeforeJumping, false);
    clf.observe(PoseId::kAirTuckHandsForward, make_candidate(enc, 2, 1, 7),
                PoseId::kAirTuckHandsForward, Stage::kInTheAir, true);
  }
  return clf;
}

TEST(Serialization, RoundTripPreservesAllProbabilities) {
  const PoseDbnClassifier original = trained();
  std::stringstream buffer;
  original.save(buffer);
  const PoseDbnClassifier restored = PoseDbnClassifier::load(buffer);

  const FeatureCandidate probe = make_candidate(original.encoder(), 2, 0, 6);
  for (int p = 0; p < kPoseCount; ++p) {
    const PoseId pose = pose_from_index(p);
    EXPECT_DOUBLE_EQ(original.prior_prob(pose), restored.prior_prob(pose));
    EXPECT_DOUBLE_EQ(original.log_likelihood(pose, probe),
                     restored.log_likelihood(pose, probe));
    EXPECT_DOUBLE_EQ(
        original.transition_prob(pose, PoseId::kStandHandsForward, Stage::kBeforeJumping),
        restored.transition_prob(pose, PoseId::kStandHandsForward, Stage::kBeforeJumping));
  }
  for (int s = 0; s < kStageCount; ++s) {
    const Stage stage = stage_from_index(s);
    EXPECT_DOUBLE_EQ(original.airborne_prob(true, stage), restored.airborne_prob(true, stage));
    for (int s2 = 0; s2 < kStageCount; ++s2) {
      EXPECT_DOUBLE_EQ(original.stage_prob(stage_from_index(s2), stage),
                       restored.stage_prob(stage_from_index(s2), stage));
    }
  }
}

TEST(Serialization, RoundTripPreservesConfig) {
  const PoseDbnClassifier original = trained();
  std::stringstream buffer;
  original.save(buffer);
  const PoseDbnClassifier restored = PoseDbnClassifier::load(buffer);
  EXPECT_EQ(restored.config().num_areas, original.config().num_areas);
  EXPECT_DOUBLE_EQ(restored.config().th_pose, 0.31);
  EXPECT_DOUBLE_EQ(restored.config().laplace_alpha, 0.4);
  EXPECT_EQ(restored.config().dominant_pose, original.config().dominant_pose);
}

TEST(Serialization, RestoredClassifierClassifiesIdentically) {
  const PoseDbnClassifier original = trained();
  std::stringstream buffer;
  original.save(buffer);
  const PoseDbnClassifier restored = PoseDbnClassifier::load(buffer);

  const std::vector<FeatureCandidate> frame{make_candidate(original.encoder(), 2, 0, 6)};
  auto s1 = original.initial_state();
  auto s2 = restored.initial_state();
  const FrameResult r1 = original.classify(frame, false, s1);
  const FrameResult r2 = restored.classify(frame, false, s2);
  EXPECT_EQ(r1.pose, r2.pose);
  EXPECT_DOUBLE_EQ(r1.posterior, r2.posterior);
}

TEST(Serialization, TrainingFramesSurvive) {
  const PoseDbnClassifier original = trained();
  std::stringstream buffer;
  original.save(buffer);
  EXPECT_DOUBLE_EQ(PoseDbnClassifier::load(buffer).training_frames(),
                   original.training_frames());
}

TEST(Serialization, RejectsGarbage) {
  std::stringstream bad("not-a-model 1");
  EXPECT_THROW(PoseDbnClassifier::load(bad), std::runtime_error);
}

TEST(Serialization, RejectsWrongVersion) {
  std::stringstream bad("slj-pose-model 999\nconfig 8");
  EXPECT_THROW(PoseDbnClassifier::load(bad), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedModel) {
  const PoseDbnClassifier original = trained();
  std::stringstream buffer;
  original.save(buffer);
  const std::string text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(PoseDbnClassifier::load(truncated), std::runtime_error);
}

TEST(Serialization, NonDefaultAreaCountRoundTrips) {
  ClassifierConfig cfg;
  cfg.num_areas = 12;
  PoseDbnClassifier original(cfg);
  std::stringstream buffer;
  original.save(buffer);
  const PoseDbnClassifier restored = PoseDbnClassifier::load(buffer);
  EXPECT_EQ(restored.encoder().num_areas(), 12);
}

}  // namespace
}  // namespace slj::pose
