#include "pose/decoders.hpp"

#include <gtest/gtest.h>

namespace slj::pose {
namespace {

FeatureCandidate make_candidate(const AreaEncoder& enc, int head, int chest, int hand, int knee,
                                int foot) {
  FeatureCandidate c;
  c.features[Part::kHead] = head;
  c.features[Part::kChest] = chest;
  c.features[Part::kHand] = hand;
  c.features[Part::kKnee] = knee;
  c.features[Part::kFoot] = foot;
  for (int i = 0; i < kPartCount; ++i) c.nodes[static_cast<std::size_t>(i)] = i;
  c.occupancy.assign(static_cast<std::size_t>(enc.num_areas()), 0);
  for (const int a : c.features.areas) {
    if (a < enc.num_areas()) c.occupancy[static_cast<std::size_t>(a)] = 1;
  }
  return c;
}

/// Classifier trained on a full synthetic "jump": standing → crouch →
/// take-off → air → landing, with distinct feature signatures.
struct Fixture {
  PoseDbnClassifier clf;
  FeatureCandidate stand, crouch, takeoff, air, land;

  Fixture() : clf() {
    const AreaEncoder& enc = clf.encoder();
    stand = make_candidate(enc, 2, 2, 0, 6, 6);
    crouch = make_candidate(enc, 1, 1, 4, 7, 6);
    takeoff = make_candidate(enc, 2, 2, 1, 6, 5);
    air = make_candidate(enc, 2, 2, 1, 7, 6);
    land = make_candidate(enc, 1, 1, 0, 7, 6);
    for (int rep = 0; rep < 25; ++rep) {
      PoseId prev = kResetPose;
      Stage stage = Stage::kBeforeJumping;
      const auto step = [&](PoseId p, const FeatureCandidate& c, bool airborne) {
        clf.observe(p, c, prev, stage_of(p), airborne);
        prev = p;
        stage = stage_of(p);
      };
      for (int i = 0; i < 4; ++i) step(PoseId::kStandHandsForward, stand, false);
      for (int i = 0; i < 3; ++i) step(PoseId::kCrouchHandsBackward, crouch, false);
      for (int i = 0; i < 2; ++i) step(PoseId::kExtendedHandsForward, takeoff, false);
      for (int i = 0; i < 4; ++i) step(PoseId::kAirTuckHandsForward, air, true);
      for (int i = 0; i < 3; ++i) step(PoseId::kLandedSquatHandsForward, land, false);
    }
  }

  std::vector<std::vector<FeatureCandidate>> clip() const {
    std::vector<std::vector<FeatureCandidate>> c;
    for (int i = 0; i < 4; ++i) c.push_back({stand});
    for (int i = 0; i < 3; ++i) c.push_back({crouch});
    for (int i = 0; i < 2; ++i) c.push_back({takeoff});
    for (int i = 0; i < 4; ++i) c.push_back({air});
    for (int i = 0; i < 3; ++i) c.push_back({land});
    return c;
  }

  std::vector<bool> flags() const {
    std::vector<bool> f(16, false);
    for (int i = 9; i < 13; ++i) f[static_cast<std::size_t>(i)] = true;
    return f;
  }
};

TEST(StageBounds, FollowTheFlightFlag) {
  const auto bounds = stage_bounds_from_flags({false, false, true, true, false, false});
  ASSERT_EQ(bounds.size(), 6u);
  EXPECT_EQ(bounds[0].first, Stage::kBeforeJumping);
  EXPECT_EQ(bounds[0].second, Stage::kJumping);
  EXPECT_EQ(bounds[2].first, Stage::kInTheAir);
  EXPECT_EQ(bounds[2].second, Stage::kInTheAir);
  EXPECT_EQ(bounds[4].first, Stage::kLanding);
  EXPECT_EQ(bounds[5].second, Stage::kLanding);
}

TEST(StageBounds, NoFlightMeansPreparationOnly) {
  const auto bounds = stage_bounds_from_flags({false, false, false});
  for (const auto& [lo, hi] : bounds) {
    EXPECT_EQ(lo, Stage::kBeforeJumping);
    EXPECT_EQ(hi, Stage::kJumping);
  }
}

// Regression: a spurious airborne flag after landing (bounce, segmentation
// noise) used to reopen kInTheAir; combined with the monotone stage
// discipline that made every state unreachable.
TEST(StageBounds, SpuriousAirborneAfterLandingStaysLanding) {
  const auto bounds = stage_bounds_from_flags({false, true, true, false, true, false, true});
  ASSERT_EQ(bounds.size(), 7u);
  for (std::size_t t = 3; t < bounds.size(); ++t) {
    EXPECT_EQ(bounds[t].first, Stage::kLanding) << "frame " << t;
    EXPECT_EQ(bounds[t].second, Stage::kLanding) << "frame " << t;
  }
}

TEST(StageBounds, TrackerMatchesBatchHelper) {
  const std::vector<bool> flags = {false, true, false, true, true, false, false, true};
  const auto batch = stage_bounds_from_flags(flags);
  StageBoundsTracker tracker;
  for (std::size_t t = 0; t < flags.size(); ++t) {
    EXPECT_EQ(tracker.push(flags[t]), batch[t]) << "frame " << t;
  }
  tracker.reset();
  EXPECT_EQ(tracker.push(false), (std::pair{Stage::kBeforeJumping, Stage::kJumping}));
}

class DecoderModes : public ::testing::TestWithParam<SequenceDecoder> {};

TEST_P(DecoderModes, DecodesTheTrainedJumpPerfectly) {
  const Fixture fx;
  const auto results = decode_sequence(fx.clf, fx.clip(), fx.flags(), GetParam());
  ASSERT_EQ(results.size(), 16u);
  const PoseId expected[] = {
      PoseId::kStandHandsForward,      PoseId::kStandHandsForward,
      PoseId::kStandHandsForward,      PoseId::kStandHandsForward,
      PoseId::kCrouchHandsBackward,    PoseId::kCrouchHandsBackward,
      PoseId::kCrouchHandsBackward,    PoseId::kExtendedHandsForward,
      PoseId::kExtendedHandsForward,   PoseId::kAirTuckHandsForward,
      PoseId::kAirTuckHandsForward,    PoseId::kAirTuckHandsForward,
      PoseId::kAirTuckHandsForward,    PoseId::kLandedSquatHandsForward,
      PoseId::kLandedSquatHandsForward, PoseId::kLandedSquatHandsForward};
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].pose, expected[i]) << "frame " << i << " decoder "
                                            << static_cast<int>(GetParam());
  }
}

TEST_P(DecoderModes, StagesNeverRegress) {
  const Fixture fx;
  const auto results = decode_sequence(fx.clf, fx.clip(), fx.flags(), GetParam());
  int prev = 0;
  for (const FrameResult& r : results) {
    if (r.pose == PoseId::kUnknown) continue;
    EXPECT_GE(index_of(r.stage), prev);
    prev = index_of(r.stage);
  }
}

TEST_P(DecoderModes, AirFramesGetAirPoses) {
  const Fixture fx;
  const auto flags = fx.flags();
  const auto results = decode_sequence(fx.clf, fx.clip(), flags, GetParam());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (flags[i] && results[i].pose != PoseId::kUnknown) {
      EXPECT_EQ(stage_of(results[i].pose), Stage::kInTheAir) << "frame " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDecoders, DecoderModes,
                         ::testing::Values(SequenceDecoder::kOnline, SequenceDecoder::kFiltering,
                                           SequenceDecoder::kViterbi));

TEST(Decoders, ViterbiRevisesAGlitchFrame) {
  // One take-off-looking glitch frame in the middle of the stand phase.
  // Following it would jump the stage to "jumping" and make the later
  // standing frames (stage "before jumping") unreachable, so the globally
  // consistent Viterbi path must smooth the glitch back to standing.
  const Fixture fx;
  auto clip = fx.clip();
  clip[1] = {fx.takeoff};
  const auto flags = fx.flags();
  const auto viterbi = decode_sequence(fx.clf, clip, flags, SequenceDecoder::kViterbi);
  EXPECT_EQ(viterbi[1].pose, PoseId::kStandHandsForward);
  // Sanity: the surrounding frames stay standing too.
  EXPECT_EQ(viterbi[0].pose, PoseId::kStandHandsForward);
  EXPECT_EQ(viterbi[2].pose, PoseId::kStandHandsForward);
}

TEST(Decoders, EmptyFramesHandledByAllModes) {
  const Fixture fx;
  auto clip = fx.clip();
  clip[5].clear();  // silhouette lost for one frame
  for (const auto mode : {SequenceDecoder::kOnline, SequenceDecoder::kFiltering,
                          SequenceDecoder::kViterbi}) {
    const auto results = decode_sequence(fx.clf, clip, fx.flags(), mode);
    EXPECT_EQ(results.size(), clip.size());
  }
}

TEST(Decoders, LengthMismatchThrows) {
  const Fixture fx;
  EXPECT_THROW(decode_sequence(fx.clf, fx.clip(), {true}, SequenceDecoder::kViterbi),
               std::invalid_argument);
}

TEST(Decoders, EmptyClipGivesEmptyResults) {
  const Fixture fx;
  for (const auto mode : {SequenceDecoder::kFiltering, SequenceDecoder::kViterbi}) {
    EXPECT_TRUE(decode_sequence(fx.clf, {}, {}, mode).empty());
  }
}

// Regression: a spurious airborne flag after touchdown used to make every
// state unreachable and trip the filtering restart hack; now those frames
// stay in landing for both whole-clip decoders.
TEST(Decoders, SpuriousAirborneAfterLandingKeepsLandingPoses) {
  const Fixture fx;
  auto flags = fx.flags();
  flags[14] = true;  // one bad flag between two landing frames
  for (const auto mode : {SequenceDecoder::kFiltering, SequenceDecoder::kViterbi}) {
    const auto results = decode_sequence(fx.clf, fx.clip(), flags, mode);
    for (std::size_t t = 13; t < results.size(); ++t) {
      EXPECT_EQ(stage_of(results[t].pose), Stage::kLanding)
          << "frame " << t << " decoder " << static_cast<int>(mode);
    }
  }
}

// Regression: the filtering decoder used to exponentiate log-emissions in
// linear space; a heavily cluttered clip (many unexplained areas, each a
// log(clutter_epsilon) charge) underflowed every weight to zero and
// collapsed the belief to uniform. The clutter charge is pose-independent,
// so the max-log shift cancels it exactly: the cluttered clip must decode
// like the clean one, with confident posteriors.
TEST(Decoders, HeavyClutterDoesNotUnderflowTheFilter) {
  const Fixture fx;
  auto cluttered = fx.clip();
  for (auto& frame : cluttered) {
    for (FeatureCandidate& c : frame) c.unexplained_areas = 600;  // ≈ -830 nats per frame
  }
  const auto clean = decode_sequence(fx.clf, fx.clip(), fx.flags(), SequenceDecoder::kFiltering);
  const auto noisy = decode_sequence(fx.clf, cluttered, fx.flags(), SequenceDecoder::kFiltering);
  ASSERT_EQ(noisy.size(), clean.size());
  for (std::size_t t = 0; t < clean.size(); ++t) {
    EXPECT_EQ(noisy[t].pose, clean[t].pose) << "frame " << t;
    EXPECT_NEAR(noisy[t].posterior, clean[t].posterior, 1e-9) << "frame " << t;
    // Far from the uniform 1/22 the underflow used to produce.
    EXPECT_GT(noisy[t].posterior, 0.2) << "frame " << t;
  }
}

// Regression: Viterbi results used to hard-code posterior = 1.0; the
// reported confidence is now the forward-pass marginal of the path state.
TEST(Decoders, ViterbiPosteriorIsARealMarginal) {
  const Fixture fx;
  const auto viterbi = decode_sequence(fx.clf, fx.clip(), fx.flags(), SequenceDecoder::kViterbi);
  const auto filtering =
      decode_sequence(fx.clf, fx.clip(), fx.flags(), SequenceDecoder::kFiltering);
  for (std::size_t t = 0; t < viterbi.size(); ++t) {
    EXPECT_GT(viterbi[t].posterior, 0.0) << "frame " << t;
    EXPECT_LE(viterbi[t].posterior, 1.0) << "frame " << t;
    if (viterbi[t].pose == filtering[t].pose) {
      // Same forward pass, so the marginals must agree exactly.
      EXPECT_DOUBLE_EQ(viterbi[t].posterior, filtering[t].posterior) << "frame " << t;
    }
  }

  // With an untrained (flat) model the marginal spreads over every pose the
  // bounds allow — nowhere near the fake 1.0 certainty.
  const PoseDbnClassifier untrained;
  const auto flat = decode_sequence(untrained, fx.clip(), fx.flags(), SequenceDecoder::kViterbi);
  for (std::size_t t = 0; t < flat.size(); ++t) {
    EXPECT_LT(flat[t].posterior, 0.9) << "frame " << t;
    EXPECT_GT(flat[t].posterior, 0.0) << "frame " << t;
  }
}

TEST(OnlineForwardDecoderTest, MatchesBatchFilteringAndResets) {
  const Fixture fx;
  const auto clip = fx.clip();
  const auto flags = fx.flags();
  const auto batch = decode_sequence(fx.clf, clip, flags, SequenceDecoder::kFiltering);

  OnlineForwardDecoder online(fx.clf);
  for (int round = 0; round < 2; ++round) {
    for (std::size_t t = 0; t < clip.size(); ++t) {
      const FrameResult r = online.push(clip[t], flags[t]);
      EXPECT_EQ(r.pose, batch[t].pose) << "round " << round << " frame " << t;
      EXPECT_DOUBLE_EQ(r.posterior, batch[t].posterior) << "round " << round << " frame " << t;
    }
    EXPECT_EQ(online.frames_seen(), clip.size());
    online.reset();
    EXPECT_EQ(online.frames_seen(), 0u);
  }
}

}  // namespace
}  // namespace slj::pose
