// Full training / evaluation run on the paper-sized corpus: 12 training
// clips (522 frames) and 3 test clips (135 frames), reporting per-clip
// accuracy the way the paper's Sec. 5 does, plus the most confused pose
// pairs.
#include <cstdio>
#include <vector>

#include "core/evaluation.hpp"
#include "core/trainer.hpp"
#include "synth/dataset.hpp"

int main() {
  using namespace slj;

  synth::DatasetSpec spec;  // defaults reproduce 522 / 135 frames
  std::printf("generating dataset (12 train clips, 3 test clips)...\n");
  const synth::Dataset dataset = synth::generate_dataset(spec);
  std::printf("  train frames: %zu   test frames: %zu\n", dataset.train_frames(),
              dataset.test_frames());

  core::FramePipeline pipeline;
  pose::PoseDbnClassifier classifier;
  std::printf("training...\n");
  const core::TrainingStats ts = core::train_on_dataset(classifier, pipeline, dataset);
  std::printf("  trained on %zu frames (%zu without skeleton, %zu missing part slots)\n",
              ts.frames, ts.frames_without_skeleton, ts.missing_part_slots);

  std::printf("evaluating...\n");
  const core::DatasetEvaluation eval = core::evaluate_dataset(classifier, pipeline, dataset.test);
  for (std::size_t i = 0; i < eval.clips.size(); ++i) {
    const core::ClipEvaluation& c = eval.clips[i];
    std::printf("  test clip %zu: %zu/%zu correct (%.1f%%), %zu unknown, stage acc %.1f%%\n",
                i + 1, c.correct, c.frames, 100.0 * c.accuracy(), c.unknown,
                100.0 * c.stage_accuracy());
  }
  std::printf("overall accuracy: %.1f%% (paper: 81%%..87%% per clip)\n",
              100.0 * eval.overall_accuracy());

  // Top confusions.
  const core::ConfusionMatrix cm = core::confusion_matrix(eval);
  struct Confusion {
    int truth, predicted;
    std::size_t count;
  };
  std::vector<Confusion> confusions;
  for (int t = 0; t < pose::kPoseCount; ++t) {
    for (int p = 0; p <= pose::kPoseCount; ++p) {
      if (t == p) continue;
      const std::size_t n = cm[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
      if (n > 0) confusions.push_back({t, p, n});
    }
  }
  std::sort(confusions.begin(), confusions.end(),
            [](const Confusion& a, const Confusion& b) { return a.count > b.count; });
  std::printf("\nmost frequent confusions:\n");
  for (std::size_t i = 0; i < confusions.size() && i < 6; ++i) {
    const auto& c = confusions[i];
    std::printf("  %zux  '%s' -> '%s'\n", c.count,
                std::string(pose::pose_name(pose::pose_from_index(c.truth))).c_str(),
                std::string(pose::pose_name(pose::pose_from_index(c.predicted))).c_str());
  }
  return 0;
}
