// Skeleton viewer: ASCII visualisation of every pipeline stage for selected
// frames of a jump — the closest a terminal gets to the paper's Figures 1,
// 5 and 8.
#include <cstdio>

#include "core/pipeline.hpp"
#include "imaging/ascii.hpp"
#include "synth/dataset.hpp"

int main() {
  using namespace slj;

  synth::ClipSpec cs;
  cs.seed = 7;
  cs.frame_count = 45;
  const synth::Clip clip = synth::generate_clip(cs);

  core::FramePipeline pipeline;
  pipeline.set_background(clip.background);

  // One frame per stage: preparation, crouch, take-off, flight, landing.
  const int picks[] = {4, 13, 19, 26, 38};
  for (const int idx : picks) {
    const core::FrameObservation obs = pipeline.process(clip.frames[static_cast<std::size_t>(idx)]);
    const synth::FrameTruth& truth = clip.truth[static_cast<std::size_t>(idx)];
    std::printf("--- frame %d | stage: %s | pose: %s ---\n", idx,
                std::string(pose::stage_name(truth.stage)).c_str(),
                std::string(pose::pose_name(truth.pose)).c_str());
    const BinaryImage skeleton =
        obs.graph.rasterize(obs.silhouette.width(), obs.silhouette.height());
    std::printf("%s", ascii_render_overlay(obs.silhouette, skeleton).c_str());
    std::printf("key points: %zu | loops cut: %zu | branches pruned: %zu\n\n",
                obs.key_points.size(), obs.cleanup.loops.edges_removed,
                obs.cleanup.prune.branches_removed);
  }
  return 0;
}
