// Jump measurement and grading — the paper's third system component
// ("(1) human detection, (2) pose estimation, and (3) scoring", Sec. 1):
// measure the jump distance off the silhouettes, check the movement
// standard, and issue a graded report card.
#include <cstdio>

#include "core/scoring.hpp"
#include "core/trainer.hpp"
#include "synth/dataset.hpp"

int main() {
  using namespace slj;

  // Train the pose model on a small corpus.
  synth::DatasetSpec spec;
  spec.seed = 515;
  spec.train_clip_frames = {44, 43, 44, 43, 44, 43};
  spec.test_clip_frames = {};
  const synth::Dataset dataset = synth::generate_dataset(spec);
  core::FramePipeline pipeline;
  pose::PoseDbnClassifier classifier;
  std::printf("training on %zu frames...\n\n", dataset.train_frames());
  core::train_on_dataset(classifier, pipeline, dataset);

  const auto grade = [&](const char* title, std::uint32_t seed, synth::FaultFlags faults) {
    synth::ClipSpec cs;
    cs.seed = seed;
    cs.frame_count = 45;
    cs.faults = faults;
    const synth::Clip clip = synth::generate_clip(cs);

    pipeline.set_background(clip.background);
    core::GroundMonitor ground;
    std::vector<core::FrameObservation> observations;
    std::vector<bool> airborne;
    std::vector<pose::FrameResult> poses;
    auto state = classifier.initial_state();
    for (const RgbImage& frame : clip.frames) {
      observations.push_back(pipeline.process(frame));
      airborne.push_back(ground.airborne(observations.back().bottom_row));
      poses.push_back(classifier.classify(observations.back().candidates, airborne.back(), state));
    }

    const core::JumpScore score = core::score_jump(observations, airborne, poses,
                                                   cs.camera.pixels_per_meter);
    std::printf("=== %s ===\n", title);
    if (score.measurement.valid()) {
      std::printf("distance: %.2f m (take-off frame %d, landing frame %d, %d frames in "
                  "flight)\n",
                  score.measurement.distance_m, score.measurement.takeoff_frame,
                  score.measurement.landing_frame, score.measurement.flight_frames);
    } else {
      std::printf("distance: could not be measured (no complete flight)\n");
    }
    std::printf("form: %d/%d checks passed\n", score.form.passed_count(),
                score.form.total_count());
    std::printf("score: %d/100 — %s\n\n", score.total, score.grade.c_str());
  };

  grade("student A (sound jump)", 900, {});
  synth::FaultFlags no_crouch;
  no_crouch.no_crouch = true;
  grade("student B (no preparatory crouch)", 901, no_crouch);
  synth::FaultFlags stiff;
  stiff.stiff_landing = true;
  stiff.no_arm_swing = true;
  grade("student C (no arm swing, stiff landing)", 902, stiff);
  return 0;
}
