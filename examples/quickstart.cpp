// Quickstart: train the pose DBN on a small synthetic corpus and analyze
// one unseen standing long jump, printing the estimated pose per frame.
//
//   $ ./quickstart
//
// Mirrors the paper's end-to-end flow: silhouette extraction → Z-S thinning
// → skeleton-graph cleanup → key points → 8-area features → DBN.
#include <cstdio>

#include "core/analyzer.hpp"
#include "synth/dataset.hpp"

int main() {
  using namespace slj;

  // 1. A reproducible synthetic corpus (stand-in for the studio footage).
  synth::DatasetSpec spec;
  spec.seed = 2008;
  spec.train_clip_frames = {44, 43, 44, 43, 44, 43};  // small & quick
  spec.test_clip_frames = {45};
  std::printf("generating %zu training clips...\n", spec.train_clip_frames.size());
  const synth::Dataset dataset = synth::generate_dataset(spec);

  // 2. Build and train the analyzer.
  core::PipelineParams pipeline_params;
  pose::ClassifierConfig classifier_config;
  core::JumpAnalyzer analyzer(pipeline_params, classifier_config);
  std::printf("training on %zu frames...\n", dataset.train_frames());
  analyzer.train(dataset);

  // 3. Analyze an unseen clip.
  const synth::Clip& clip = dataset.test.front();
  const core::ClipAnalysis analysis = analyzer.analyze(clip);

  std::printf("\n%-5s  %-11s  %-13s  %s\n", "frame", "stage", "truth", "estimated pose");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < analysis.frames.size(); ++i) {
    const pose::FrameResult& r = analysis.frames[i];
    const bool ok = r.pose == clip.truth[i].pose;
    correct += ok ? 1u : 0u;
    std::printf("%5zu  %-11s  %-13.13s  %s%s\n", i,
                std::string(pose::stage_name(r.stage)).c_str(),
                std::string(pose::pose_name(clip.truth[i].pose)).c_str(),
                std::string(pose::pose_name(r.pose)).c_str(), ok ? "" : "   <-- differs");
  }
  std::printf("\nframe accuracy: %zu/%zu (%.1f%%)\n", correct, analysis.frames.size(),
              100.0 * static_cast<double>(correct) / analysis.frames.size());
  std::printf("\n%s\n", analysis.report.to_string().c_str());
  return 0;
}
