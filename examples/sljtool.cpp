// sljtool — command-line front end for the full system:
//
//   sljtool generate --out DIR [--seed N]        export a synthetic corpus
//   sljtool train    --data DIR --model FILE     train the pose DBN
//   sljtool analyze  --model FILE --clip DIR     poses + coaching + score
//   sljtool evaluate --model FILE --data DIR     per-clip accuracy
//   sljtool stream   --model FILE --clip DIR     replay the clip as live feeds
//   sljtool serve    [--sessions N] [...]        async ingest service demo
//   sljtool record   --out FILE [...]            record a deterministic ingest
//                                                trace (.sljtrace)
//   sljtool replay   --trace FILE [...]          re-drive a trace and verify
//                                                bit-identical analysis
//   sljtool top      [--slo-p99 MS] [...]        live per-session SLO table with
//                                                a flight recorder attached: an
//                                                SLO breach (or SIGUSR1) dumps
//                                                the retained window as a
//                                                replayable incident .sljtrace
//   sljtool trace-export --trace FILE --out FILE replay a trace with the event
//                                                tracer on and export the merged
//                                                tracer + profiler timeline as
//                                                Chrome trace-event JSON
//
// Clip directories use the clip_io format (background.ppm, frame_NNN.ppm,
// manifest.txt) — real footage can be dropped in the same layout.
//
// analyze and evaluate run the vision pass on the ClipEngine worker pool
// (--workers N, default: hardware concurrency; --tracker 1 selects the
// jumper blob with the BlobTracker instead of largest-component). stream
// pushes the clip one frame at a time through StreamManager sessions —
// simulated concurrent cameras — printing advice the moment a
// movement-standard rule resolves, and verifies the live results against
// the batch decoder. serve goes fully asynchronous: N producer threads
// push frames at a jittery camera cadence into the IngestService's bounded
// per-session queues while the scheduler drains, analyses and delivers,
// with the live telemetry table refreshed as it runs.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/clip_engine.hpp"
#include "core/evaluation.hpp"
#include "core/profiler.hpp"
#include "core/scoring.hpp"
#include "core/stream_engine.hpp"
#include "core/trainer.hpp"
#include "ingest/ingest_service.hpp"
#include "obs/service_monitor.hpp"
#include "obs/tracer.hpp"
#include "pose/decoders.hpp"
#include "replay/trace_recorder.hpp"
#include "replay/trace_replayer.hpp"
#include "synth/clip_io.hpp"
#include "synth/dataset.hpp"

namespace {

using namespace slj;

std::map<std::string, std::string> parse_flags(int argc, char** argv, int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      throw std::runtime_error(std::string("expected flag, got ") + argv[i]);
    }
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

std::string require(const std::map<std::string, std::string>& flags, const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) throw std::runtime_error("missing --" + key);
  return it->second;
}

int cmd_generate(const std::map<std::string, std::string>& flags) {
  synth::DatasetSpec spec;
  if (const auto it = flags.find("seed"); it != flags.end()) {
    spec.seed = static_cast<std::uint32_t>(std::stoul(it->second));
  }
  const std::string out = require(flags, "out");
  std::printf("generating %zu train + %zu test clips (seed %u)...\n",
              spec.train_clip_frames.size(), spec.test_clip_frames.size(), spec.seed);
  const synth::Dataset dataset = synth::generate_dataset(spec);
  synth::save_dataset(dataset, out);
  std::printf("wrote %zu train frames and %zu test frames under %s\n", dataset.train_frames(),
              dataset.test_frames(), out.c_str());
  return 0;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  const synth::Dataset dataset = synth::load_dataset(require(flags, "data"));
  core::FramePipeline pipeline;
  pose::PoseDbnClassifier classifier;
  std::printf("training on %zu clips (%zu frames)...\n", dataset.train.size(),
              dataset.train_frames());
  const core::TrainingStats stats = core::train_on_dataset(classifier, pipeline, dataset);
  std::printf("trained on %zu frames (%zu without skeleton)\n", stats.frames,
              stats.frames_without_skeleton);
  const std::string model_path = require(flags, "model");
  std::ofstream out(model_path);
  if (!out) throw std::runtime_error("cannot write " + model_path);
  classifier.save(out);
  std::printf("model written to %s\n", model_path.c_str());
  return 0;
}

core::ClipEngineConfig engine_config(const std::map<std::string, std::string>& flags) {
  core::ClipEngineConfig config;
  if (const auto it = flags.find("workers"); it != flags.end()) {
    long workers = -1;
    try {
      workers = std::stol(it->second);
    } catch (const std::exception&) {
    }
    if (workers < 0 || workers > 1024) {
      throw std::runtime_error("--workers must be an integer in [0, 1024], got '" + it->second +
                               "'");
    }
    config.workers = static_cast<unsigned>(workers);
  }
  if (const auto it = flags.find("tracker"); it != flags.end()) {
    config.use_tracker = it->second != "0" && it->second != "false";
  }
  return config;
}

pose::PoseDbnClassifier load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  return pose::PoseDbnClassifier::load(in);
}

int cmd_analyze(const std::map<std::string, std::string>& flags) {
  const pose::PoseDbnClassifier classifier = load_model(require(flags, "model"));
  const synth::Clip clip = synth::load_clip(require(flags, "clip"));
  double ppm = 72.0;
  if (const auto it = flags.find("ppm"); it != flags.end()) ppm = std::stod(it->second);

  core::ClipEngine engine({}, engine_config(flags));
  const core::ClipObservation observation = engine.process(clip);
  const std::vector<pose::FrameResult> poses =
      classifier.classify_sequence(observation.candidate_sets(), observation.airborne);
  for (std::size_t i = 0; i < poses.size(); ++i) {
    std::printf("frame %3zu  [%-14s]  %s\n", i,
                std::string(pose::stage_name(poses[i].stage)).c_str(),
                std::string(pose::pose_name(poses[i].pose)).c_str());
  }
  const core::JumpScore score =
      core::score_jump(observation.frames, observation.airborne, poses, ppm);
  std::printf("\n%s", score.form.to_string().c_str());
  if (score.measurement.valid()) {
    std::printf("measured distance: %.2f m\n", score.measurement.distance_m);
  }
  std::printf("score: %d/100 (%s)\n", score.total, score.grade.c_str());
  return 0;
}

int cmd_stream(const std::map<std::string, std::string>& flags) {
  const pose::PoseDbnClassifier classifier = load_model(require(flags, "model"));
  const synth::Clip clip = synth::load_clip(require(flags, "clip"));

  long sessions = 1;
  if (const auto it = flags.find("sessions"); it != flags.end()) {
    try {
      sessions = std::stol(it->second);
    } catch (const std::exception&) {
      sessions = -1;
    }
    if (sessions < 1 || sessions > 1024) {
      throw std::runtime_error("--sessions must be an integer in [1, 1024], got '" + it->second +
                               "'");
    }
  }

  core::StreamManagerConfig config;
  config.workers = engine_config(flags).workers;
  config.session.use_tracker = engine_config(flags).use_tracker;
  if (const auto it = flags.find("decoder"); it != flags.end()) {
    if (it->second == "online") {
      config.session.decoder = core::StreamDecoder::kOnline;
    } else if (it->second == "filtering") {
      config.session.decoder = core::StreamDecoder::kFiltering;
    } else {
      throw std::runtime_error("--decoder must be 'online' or 'filtering', got '" + it->second +
                               "'");
    }
  }

  core::StreamManager manager(classifier, {}, config);
  std::vector<int> ids;
  for (long s = 0; s < sessions; ++s) ids.push_back(manager.open_session(clip.background));
  std::printf("streaming %zu frames into %ld concurrent session%s...\n\n", clip.frames.size(),
              sessions, sessions == 1 ? "" : "s");

  // Every session replays the same clip — N simulated cameras on one jump.
  std::vector<pose::FrameResult> live;
  std::vector<core::StreamManager::Feed> feeds(ids.size());
  for (const RgbImage& frame : clip.frames) {
    for (std::size_t s = 0; s < ids.size(); ++s) feeds[s] = {ids[s], &frame};
    const std::vector<core::StreamUpdate> updates = manager.tick(feeds);
    const core::StreamUpdate& u = updates.front();  // narrate session 0
    live.push_back(u.result);
    std::printf("frame %3zu %s [%-14s]  %-32s p=%.3f\n", u.frame_index,
                u.airborne ? "air " : "gnd ", std::string(pose::stage_name(u.result.stage)).c_str(),
                std::string(pose::pose_name(u.result.pose)).c_str(), u.result.posterior);
    for (const core::ResolvedFault& r : u.resolved) {
      std::printf("          >> %s: %s\n", r.finding.passed ? "PASS" : "FAIL",
                  std::string(core::rule_name(r.finding.rule)).c_str());
      if (!r.finding.passed) {
        std::printf("             advice: %s\n", std::string(core::rule_advice(r.finding.rule)).c_str());
      }
    }
  }
  const core::JumpReport report = manager.close_session(ids.front());
  for (std::size_t s = 1; s < ids.size(); ++s) manager.close_session(ids[s]);
  std::printf("\n%s", report.to_string().c_str());

  // Live results must agree frame for frame with the batch decoder.
  core::ClipEngineConfig batch_config = engine_config(flags);
  core::ClipEngine engine({}, batch_config);
  const core::ClipObservation observation = engine.process(clip);
  const std::vector<pose::FrameResult> batch = pose::decode_sequence(
      classifier, observation.candidate_sets(), observation.airborne,
      config.session.decoder == core::StreamDecoder::kFiltering ? pose::SequenceDecoder::kFiltering
                                                                : pose::SequenceDecoder::kOnline);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (live[i].pose != batch[i].pose || live[i].stage != batch[i].stage ||
        live[i].posterior != batch[i].posterior) {
      ++mismatches;
    }
  }
  std::printf("verify vs batch decoder: %s\n",
              mismatches == 0 ? "identical on every frame"
                              : (std::to_string(mismatches) + " mismatching frames").c_str());
  return mismatches == 0 ? 0 : 1;
}

long long_flag(const std::map<std::string, std::string>& flags, const std::string& key,
               long fallback, long lo, long hi) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  long value = lo - 1;
  try {
    value = std::stol(it->second);
  } catch (const std::exception&) {
  }
  if (value < lo || value > hi) {
    throw std::runtime_error("--" + key + " must be an integer in [" + std::to_string(lo) + ", " +
                             std::to_string(hi) + "], got '" + it->second + "'");
  }
  return value;
}

double double_flag(const std::map<std::string, std::string>& flags, const std::string& key,
                   double fallback, double lo, double hi) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  double value = lo - 1.0;
  try {
    value = std::stod(it->second);
  } catch (const std::exception&) {
  }
  if (value < lo || value > hi) {
    throw std::runtime_error("--" + key + " must be in [" + std::to_string(lo) + ", " +
                             std::to_string(hi) + "], got '" + it->second + "'");
  }
  return value;
}

ingest::BackpressurePolicy policy_flag(const std::map<std::string, std::string>& flags,
                                       ingest::BackpressurePolicy fallback) {
  const auto it = flags.find("policy");
  if (it == flags.end()) return fallback;
  if (it->second == "block") return ingest::BackpressurePolicy::kBlock;
  if (it->second == "drop-oldest") return ingest::BackpressurePolicy::kDropOldest;
  if (it->second == "reject-newest") return ingest::BackpressurePolicy::kRejectNewest;
  throw std::runtime_error("--policy must be 'block', 'drop-oldest' or 'reject-newest', got '" +
                           it->second + "'");
}

void print_serve_table(const ingest::IngestMetricsSnapshot& snap, double elapsed_s) {
  std::printf(
      "t=%5.1fs  pushed %6llu  delivered %6llu  dropped %5llu  rejected %5llu  "
      "limited %5llu  depth %3zu (deepest queue %zu)  p50 %6.2f ms  p99 %6.2f ms\n",
      elapsed_s, static_cast<unsigned long long>(snap.pushed),
      static_cast<unsigned long long>(snap.delivered),
      static_cast<unsigned long long>(snap.dropped_oldest),
      static_cast<unsigned long long>(snap.rejected),
      static_cast<unsigned long long>(snap.rate_limited), snap.queue_depth, snap.queue_depth_peak,
      snap.latency_p50_ms, snap.latency_p99_ms);
}

// serve: the push-based service end to end. N producer threads play jittery
// cameras — each pushes the clip's frames (cycled) at its target fps with
// per-frame timing noise — against the IngestService's bounded queues while
// the scheduler thread drains, analyses and delivers. The telemetry table
// refreshes twice a second; the final snapshot is printed as JSON.
int cmd_serve(const std::map<std::string, std::string>& flags) {
  pose::PoseDbnClassifier classifier;  // untrained by default: same frame cost
  if (const auto it = flags.find("model"); it != flags.end()) classifier = load_model(it->second);
  synth::Clip clip;
  if (const auto it = flags.find("clip"); it != flags.end()) {
    clip = synth::load_clip(it->second);
  } else {
    synth::ClipSpec spec;
    spec.seed = static_cast<std::uint32_t>(long_flag(flags, "seed", 2008, 1, 1u << 30));
    clip = synth::generate_clip(spec);
  }

  const long sessions = long_flag(flags, "sessions", 4, 1, 1024);
  const double seconds = double_flag(flags, "seconds", 4.0, 0.1, 3600.0);
  const double fps = double_flag(flags, "fps", 60.0, 1.0, 10000.0);
  const double jitter = double_flag(flags, "jitter", 0.5, 0.0, 1.0);

  ingest::IngestServiceConfig config;
  config.manager.workers = static_cast<unsigned>(long_flag(flags, "workers", 0, 0, 1024));
  ingest::IngestSessionConfig session_config;
  session_config.queue.capacity =
      static_cast<std::size_t>(long_flag(flags, "capacity", 8, 1, 4096));
  session_config.queue.rate.tokens_per_second = double_flag(flags, "rate", 0.0, 0.0, 1e6);
  session_config.queue.rate.burst = double_flag(flags, "burst", 4.0, 1.0, 4096.0);
  session_config.queue.policy = policy_flag(flags, session_config.queue.policy);

  ingest::IngestService service(classifier, {}, config);
  std::vector<int> ids;
  for (long s = 0; s < sessions; ++s) {
    ids.push_back(service.open_session(clip.background, session_config));
  }
  std::printf("serving %ld jittery %.0f fps camera%s (policy %s, queue capacity %zu%s) "
              "for %.1f s...\n\n",
              sessions, fps, sessions == 1 ? "" : "s",
              ingest::policy_name(session_config.queue.policy), session_config.queue.capacity,
              session_config.queue.rate.tokens_per_second > 0.0 ? ", rate-limited" : "",
              seconds);
  service.start();

  using WallClock = std::chrono::steady_clock;
  const auto start = WallClock::now();
  const auto deadline = start + std::chrono::duration_cast<WallClock::duration>(
                                    std::chrono::duration<double>(seconds));
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < ids.size(); ++s) {
    producers.emplace_back([&, s] {
      std::mt19937 rng(static_cast<std::uint32_t>(1000 + s));
      std::uniform_real_distribution<double> noise(1.0 - jitter, 1.0 + jitter);
      const double period_s = 1.0 / fps;
      std::size_t frame = s;  // stagger the feeds
      while (WallClock::now() < deadline) {
        service.push(ids[s], clip.frames[frame % clip.frames.size()]);
        ++frame;
        std::this_thread::sleep_for(
            std::chrono::duration_cast<WallClock::duration>(
                std::chrono::duration<double>(period_s * noise(rng))));
      }
    });
  }

  while (WallClock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    print_serve_table(service.metrics(),
                      std::chrono::duration<double>(WallClock::now() - start).count());
  }
  for (std::thread& t : producers) t.join();
  service.flush();

  const ingest::IngestMetricsSnapshot snap = service.metrics();
  std::printf("\nper-session:\n");
  std::printf("  id  policy         pushed  delivered  dropped  rejected  limited  fps\n");
  for (const ingest::SessionMetricsSnapshot& row : snap.sessions) {
    std::printf("  %2d  %-13s %7llu  %9llu  %7llu  %8llu  %7llu  %5.1f\n", row.session,
                row.policy, static_cast<unsigned long long>(row.pushed),
                static_cast<unsigned long long>(row.delivered),
                static_cast<unsigned long long>(row.dropped_oldest),
                static_cast<unsigned long long>(row.rejected),
                static_cast<unsigned long long>(row.rate_limited), row.throughput_fps);
  }
  std::printf("\nfinal snapshot:\n%s\n", snap.to_json().c_str());
  for (const int id : ids) service.close_session(id);
  service.stop();

  // Drop accounting must balance exactly: every admitted frame was either
  // delivered to a sink or discarded by an accounted mechanism.
  const ingest::IngestMetricsSnapshot end = service.metrics();
  const bool balanced = end.pushed == end.delivered + end.dropped_oldest + end.discarded;
  std::printf("accounting: pushed %llu == delivered %llu + dropped %llu + discarded %llu  [%s]\n",
              static_cast<unsigned long long>(end.pushed),
              static_cast<unsigned long long>(end.delivered),
              static_cast<unsigned long long>(end.dropped_oldest),
              static_cast<unsigned long long>(end.discarded), balanced ? "ok" : "MISMATCH");
  return balanced ? 0 : 1;
}

// record: capture a *deterministic* ingest run as a .sljtrace file. Unlike
// serve, nothing here depends on wall-clock or thread timing: the router
// runs on a manual clock, the scheduler stays stopped, and every round is
// pushed single-threaded then drained inline through flush(). The same
// flags therefore always produce byte-for-byte the same trace — which is
// what makes the checked-in regression corpus reproducible.
//
// Each round pushes --pushes-per-round frames into every session, advances
// the virtual clock by 1/fps, and drains. With a small --capacity this
// exercises the backpressure policy for real (drop-oldest replaces, reject-
// newest refuses, block is kept below capacity so the stopped scheduler
// cannot deadlock a blocking producer).
int cmd_record(const std::map<std::string, std::string>& flags) {
  pose::PoseDbnClassifier classifier;  // untrained by default: no model file needed
  if (const auto it = flags.find("model"); it != flags.end()) classifier = load_model(it->second);

  synth::Clip clip;
  if (const auto it = flags.find("clip"); it != flags.end()) {
    clip = synth::load_clip(it->second);
  } else {
    synth::ClipSpec spec;
    spec.seed = static_cast<std::uint32_t>(long_flag(flags, "seed", 2008, 1, 1u << 30));
    if (long_flag(flags, "mini", 0, 0, 1) != 0) {
      // Tiny noise-free studio: frames RLE-compress ~50x, keeping corpus
      // traces small enough to check into the repository.
      spec.camera.width = 96;
      spec.camera.height = 64;
      spec.camera.pixels_per_meter = 24.0;
      spec.camera.origin_x_px = 12.0;
      spec.camera.ground_y_px = 60.0;
      spec.camera.sensor_noise_sigma = 0.0;
      spec.camera.speckle_fraction = 0.0;
    }
    clip = synth::generate_clip(spec);
  }

  const std::string out = require(flags, "out");
  const long sessions = long_flag(flags, "sessions", 3, 1, 64);
  const long frames = long_flag(flags, "frames", 18, 1, 100000);
  const double fps = double_flag(flags, "fps", 60.0, 1.0, 10000.0);
  long per_round = long_flag(flags, "pushes-per-round", 2, 1, 64);

  ingest::IngestSessionConfig session_config;
  session_config.queue.capacity =
      static_cast<std::size_t>(long_flag(flags, "capacity", 2, 1, 4096));
  session_config.queue.rate.tokens_per_second = double_flag(flags, "rate", 0.0, 0.0, 1e6);
  session_config.queue.rate.burst = double_flag(flags, "burst", 4.0, 1.0, 4096.0);
  session_config.queue.policy = policy_flag(flags, ingest::BackpressurePolicy::kDropOldest);
  if (session_config.queue.policy == ingest::BackpressurePolicy::kBlock &&
      per_round > static_cast<long>(session_config.queue.capacity)) {
    // A blocking push against a full queue would wait forever with the
    // scheduler stopped; keep each round within capacity instead.
    per_round = static_cast<long>(session_config.queue.capacity);
    std::printf("note: clamped --pushes-per-round to capacity %ld for the block policy\n",
                per_round);
  }

  // Manual clock: the plane's only time source, advanced by hand per round.
  std::atomic<std::int64_t> now_ns{0};
  ingest::IngestServiceConfig config;
  config.manager.workers = static_cast<unsigned>(long_flag(flags, "workers", 1, 0, 1024));
  config.router.clock = [&now_ns] {
    return ingest::Clock::time_point(ingest::Clock::duration(now_ns.load()));
  };

  ingest::IngestService service(classifier, {}, config);
  replay::TraceRecorder recorder(out);
  service.set_tap(&recorder);

  std::vector<int> ids;
  for (long s = 0; s < sessions; ++s) {
    ids.push_back(service.open_session(clip.background, session_config));
  }

  const auto period_ns = static_cast<std::int64_t>(1e9 / fps);
  std::vector<std::size_t> next(ids.size());
  for (std::size_t s = 0; s < ids.size(); ++s) next[s] = s;  // stagger the feeds
  long pushed = 0;
  while (pushed < frames * sessions) {
    for (std::size_t s = 0; s < ids.size(); ++s) {
      for (long k = 0; k < per_round && pushed < frames * sessions; ++k) {
        service.push(ids[s], clip.frames[next[s] % clip.frames.size()]);
        ++next[s];
        ++pushed;
      }
    }
    now_ns.fetch_add(period_ns);
    service.flush();  // scheduler stopped: drains inline, deterministically
  }
  for (const int id : ids) service.close_session(id);
  recorder.finish(service.metrics());

  const ingest::IngestMetricsSnapshot snap = service.metrics();
  std::printf("recorded %llu events to %s (%ld sessions, %llu pushed, %llu delivered, "
              "%llu dropped, %llu rejected, policy %s)\n",
              static_cast<unsigned long long>(recorder.events()), out.c_str(), sessions,
              static_cast<unsigned long long>(snap.pushed),
              static_cast<unsigned long long>(snap.delivered),
              static_cast<unsigned long long>(snap.dropped_oldest),
              static_cast<unsigned long long>(snap.rejected),
              ingest::policy_name(session_config.queue.policy));

  // Immediate self-check: the trace must replay bit-identically in-process.
  replay::ReplayOptions options;
  options.workers = 1;
  const replay::ReplayResult check =
      replay::TraceReplayer(classifier, {}, options).replay_file(out);
  std::printf("self-check: %s\n",
              check.identical() ? "replays bit-identically"
                                : ("DIVERGED: " + check.first_mismatch()).c_str());
  return check.identical() ? 0 : 1;
}

// replay: re-drive a trace through today's code and verify the recorded
// golden outputs, at any worker count. Exit status 0 = bit-identical
// (within --tolerance for posteriors, for cross-toolchain corpora).
int cmd_replay(const std::map<std::string, std::string>& flags) {
  pose::PoseDbnClassifier classifier;
  if (const auto it = flags.find("model"); it != flags.end()) classifier = load_model(it->second);

  replay::ReplayOptions options;
  options.workers = static_cast<unsigned>(long_flag(flags, "workers", 1, 0, 1024));
  options.posterior_tolerance = double_flag(flags, "tolerance", 0.0, 0.0, 1.0);

  core::Profiler::instance().reset();
  const replay::TraceReplayer replayer(classifier, {}, options);
  const replay::ReplayResult result = replayer.replay_file(require(flags, "trace"));

  std::printf("replayed %llu ticks / %llu frames across %llu sessions "
              "(recorded span %.3f s, workers %u)\n",
              static_cast<unsigned long long>(result.ticks),
              static_cast<unsigned long long>(result.frames_replayed),
              static_cast<unsigned long long>(result.sessions_opened),
              static_cast<double>(result.recorded_span_ns) / 1e9, options.workers);
  if (!result.has_summary) std::printf("warning: trace has no summary record\n");
  for (const std::string& m : result.mismatches) std::printf("  mismatch: %s\n", m.c_str());
  std::printf("verdict: %s (%llu update, %llu report, %llu accounting mismatches)\n",
              result.identical() ? "bit-identical" : "DIVERGED",
              static_cast<unsigned long long>(result.update_mismatches),
              static_cast<unsigned long long>(result.report_mismatches),
              static_cast<unsigned long long>(result.accounting_mismatches));

  // Per-stage timings of the replay itself (populated in profiler builds).
  const core::ProfilerSnapshot profile = core::Profiler::instance().snapshot();
  if (const auto it = flags.find("profile-json"); it != flags.end()) {
    std::ofstream json(it->second);
    if (!json) throw std::runtime_error("cannot write " + it->second);
    json << profile.to_json() << "\n";
    std::printf("profiler snapshot written to %s\n", it->second.c_str());
  } else if (profile.compiled) {
    std::printf("profiler:\n%s\n", profile.to_json().c_str());
  }
  return result.identical() ? 0 : 1;
}

#ifdef SIGUSR1
/// Set by the SIGUSR1 handler; cmd_top's refresh loop turns it into an
/// operator-requested incident dump.
volatile std::sig_atomic_t g_dump_requested = 0;
void on_dump_signal(int) { g_dump_requested = 1; }
#endif

// top: the live operator view. Same jittery producers as serve, but with the
// full observability stack attached — the event tracer on, a FlightRecorder
// riding as the service's tap, and every refresh scored against the SLO
// budgets. A gauge crossing into breach (or SIGUSR1) dumps the recorder's
// retained window as incident_<n>_<reason>.sljtrace, replayable with
// `sljtool replay`.
int cmd_top(const std::map<std::string, std::string>& flags) {
  pose::PoseDbnClassifier classifier;
  if (const auto it = flags.find("model"); it != flags.end()) classifier = load_model(it->second);
  synth::Clip clip;
  if (const auto it = flags.find("clip"); it != flags.end()) {
    clip = synth::load_clip(it->second);
  } else {
    synth::ClipSpec spec;
    spec.seed = static_cast<std::uint32_t>(long_flag(flags, "seed", 2008, 1, 1u << 30));
    clip = synth::generate_clip(spec);
  }

  const long sessions = long_flag(flags, "sessions", 4, 1, 1024);
  const double seconds = double_flag(flags, "seconds", 4.0, 0.1, 3600.0);
  const double fps = double_flag(flags, "fps", 60.0, 1.0, 10000.0);
  const double jitter = double_flag(flags, "jitter", 0.5, 0.0, 1.0);
  const long refresh_ms = long_flag(flags, "refresh", 500, 50, 60000);
  const bool plain = long_flag(flags, "plain", 0, 0, 1) != 0;

  ingest::IngestServiceConfig config;
  config.manager.workers = static_cast<unsigned>(long_flag(flags, "workers", 0, 0, 1024));
  ingest::IngestSessionConfig session_config;
  session_config.queue.capacity =
      static_cast<std::size_t>(long_flag(flags, "capacity", 8, 1, 4096));
  session_config.queue.rate.tokens_per_second = double_flag(flags, "rate", 0.0, 0.0, 1e6);
  session_config.queue.rate.burst = double_flag(flags, "burst", 4.0, 1.0, 4096.0);
  session_config.queue.policy = policy_flag(flags, session_config.queue.policy);

  obs::ServiceMonitorConfig monitor_config;
  monitor_config.slo.p99_budget_ms = double_flag(flags, "slo-p99", 0.0, 0.0, 1e9);
  monitor_config.slo.drop_rate_budget = double_flag(flags, "slo-drop", 0.0, 0.0, 1.0);
  monitor_config.slo.breach_after =
      static_cast<int>(long_flag(flags, "slo-breach-after", 2, 1, 1000));
  monitor_config.slo.clear_after =
      static_cast<int>(long_flag(flags, "slo-clear-after", 2, 1, 1000));
  monitor_config.incident_dir = [&flags] {
    const auto it = flags.find("incident-dir");
    return it != flags.end() ? it->second : std::string(".");
  }();
  monitor_config.max_incidents =
      static_cast<std::size_t>(long_flag(flags, "max-incidents", 4, 0, 64));

  ingest::IngestService service(classifier, {}, config);
  // The monitor installs the flight recorder tap and must exist before any
  // session opens — a session the recorder never saw open cannot be dumped.
  obs::ServiceMonitor monitor(service, monitor_config);
#ifdef SIGUSR1
  g_dump_requested = 0;
  std::signal(SIGUSR1, on_dump_signal);
#endif

  std::vector<int> ids;
  for (long s = 0; s < sessions; ++s) {
    ids.push_back(service.open_session(clip.background, session_config));
  }
  std::printf("top: %ld jittery %.0f fps camera%s for %.1f s  (SLO: p99 %s, drop-rate %s; "
              "incidents -> %s)\n",
              sessions, fps, sessions == 1 ? "" : "s", seconds,
              monitor_config.slo.latency_tracked()
                  ? (std::to_string(monitor_config.slo.p99_budget_ms) + " ms").c_str()
                  : "untracked",
              monitor_config.slo.drops_tracked()
                  ? std::to_string(monitor_config.slo.drop_rate_budget).c_str()
                  : "untracked",
              monitor_config.incident_dir.c_str());
  service.start();

  using WallClock = std::chrono::steady_clock;
  const auto start = WallClock::now();
  const auto deadline = start + std::chrono::duration_cast<WallClock::duration>(
                                    std::chrono::duration<double>(seconds));
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < ids.size(); ++s) {
    producers.emplace_back([&, s] {
      std::mt19937 rng(static_cast<std::uint32_t>(1000 + s));
      std::uniform_real_distribution<double> noise(1.0 - jitter, 1.0 + jitter);
      const double period_s = 1.0 / fps;
      std::size_t frame = s;  // stagger the feeds
      while (WallClock::now() < deadline) {
        service.push(ids[s], clip.frames[frame % clip.frames.size()]);
        ++frame;
        std::this_thread::sleep_for(
            std::chrono::duration_cast<WallClock::duration>(
                std::chrono::duration<double>(period_s * noise(rng))));
      }
    });
  }

  const auto print_table = [&](const ingest::IngestMetricsSnapshot& snap, double elapsed_s) {
    if (!plain) std::printf("\033[H\033[2J");
    std::printf("sljtool top  t=%5.1fs  seq %llu  sessions %zu  depth %zu  "
                "p50 %.2f ms  p99 %.2f ms  breached %zu (total breaches %llu)\n",
                elapsed_s, static_cast<unsigned long long>(snap.sequence), snap.open_sessions,
                snap.queue_depth, snap.latency_p50_ms, snap.latency_p99_ms,
                snap.slo_breached_sessions, static_cast<unsigned long long>(snap.slo_breaches));
    std::printf("  id  policy         fps    pushed  delivered  dropped  depth  "
                "p50 ms  p99 ms  drop%%   slo\n");
    for (const ingest::SessionMetricsSnapshot& row : snap.sessions) {
      std::printf("  %2d  %-13s %5.1f  %8llu  %9llu  %7llu  %5zu  %6.2f  %6.2f  %5.1f  %s\n",
                  row.session, row.policy, row.throughput_fps,
                  static_cast<unsigned long long>(row.pushed),
                  static_cast<unsigned long long>(row.delivered),
                  static_cast<unsigned long long>(row.dropped_oldest), row.queue_depth,
                  row.latency_p50_ms, row.latency_p99_ms, 100.0 * row.drop_rate, row.slo_state);
    }
  };

  while (WallClock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
#ifdef SIGUSR1
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      const std::string path = monitor.trigger_incident("signal");
      if (!path.empty()) std::printf("incident dumped on signal: %s\n", path.c_str());
    }
#endif
    print_table(monitor.poll(),
                std::chrono::duration<double>(WallClock::now() - start).count());
  }
  for (std::thread& t : producers) t.join();
  service.flush();

  const ingest::IngestMetricsSnapshot snap = monitor.poll();
  print_table(snap, std::chrono::duration<double>(WallClock::now() - start).count());
  std::printf("\nfinal snapshot:\n%s\n", snap.to_json().c_str());
  for (const int id : ids) service.close_session(id);
  service.stop();

  for (const std::string& path : monitor.incident_paths()) {
    std::printf("incident trace: %s\n", path.c_str());
  }
  std::printf("flight recorder: %zu sessions retained, ~%zu KiB, %llu evicted, "
              "%llu incidents\n",
              monitor.recorder().sessions(), monitor.recorder().bytes() / 1024,
              static_cast<unsigned long long>(monitor.recorder().evicted_sessions()),
              static_cast<unsigned long long>(monitor.incidents()));

  if (const auto it = flags.find("trace-json"); it != flags.end()) {
    const core::ProfilerSnapshot profile = core::Profiler::instance().snapshot();
    std::ofstream json(it->second);
    if (!json) throw std::runtime_error("cannot write " + it->second);
    json << obs::chrome_trace_json(obs::Tracer::instance().snapshot(), &profile);
    std::printf("trace timeline written to %s\n", it->second.c_str());
  }

  const ingest::IngestMetricsSnapshot end = service.metrics();
  const bool balanced = end.pushed == end.delivered + end.dropped_oldest + end.discarded;
  std::printf("accounting: pushed %llu == delivered %llu + dropped %llu + discarded %llu  [%s]\n",
              static_cast<unsigned long long>(end.pushed),
              static_cast<unsigned long long>(end.delivered),
              static_cast<unsigned long long>(end.dropped_oldest),
              static_cast<unsigned long long>(end.discarded), balanced ? "ok" : "MISMATCH");
  return balanced ? 0 : 1;
}

// trace-export: replay a .sljtrace with the event tracer enabled and write
// the merged tracer + profiler timeline as Chrome trace-event JSON (open in
// chrome://tracing or Perfetto). The replay's bit-identity verdict is the
// exit status, so the export doubles as a regression check.
int cmd_trace_export(const std::map<std::string, std::string>& flags) {
  pose::PoseDbnClassifier classifier;
  if (const auto it = flags.find("model"); it != flags.end()) classifier = load_model(it->second);

  const std::string trace_path = require(flags, "trace");
  const std::string out_path = require(flags, "out");
  replay::ReplayOptions options;
  options.workers = static_cast<unsigned>(long_flag(flags, "workers", 1, 0, 1024));
  options.posterior_tolerance = double_flag(flags, "tolerance", 0.0, 0.0, 1.0);

  obs::Tracer::instance().set_enabled(true);
  obs::Tracer::instance().reset();
  core::Profiler::instance().reset();

  const replay::TraceReplayer replayer(classifier, {}, options);
  const replay::ReplayResult result = replayer.replay_file(trace_path);
  obs::Tracer::instance().set_enabled(false);

  const obs::TracerSnapshot tracer_snap = obs::Tracer::instance().snapshot();
  const core::ProfilerSnapshot profile = core::Profiler::instance().snapshot();
  std::ofstream json(out_path);
  if (!json) throw std::runtime_error("cannot write " + out_path);
  json << obs::chrome_trace_json(tracer_snap, &profile);

  std::printf("replayed %llu ticks / %llu frames across %llu sessions; "
              "exported %llu trace events (%llu dropped) from %zu threads to %s\n",
              static_cast<unsigned long long>(result.ticks),
              static_cast<unsigned long long>(result.frames_replayed),
              static_cast<unsigned long long>(result.sessions_opened),
              static_cast<unsigned long long>(tracer_snap.total_events),
              static_cast<unsigned long long>(tracer_snap.total_dropped),
              tracer_snap.threads.size(), out_path.c_str());
  std::printf("verdict: %s\n", result.identical() ? "bit-identical" : "DIVERGED");
  return result.identical() ? 0 : 1;
}

int cmd_evaluate(const std::map<std::string, std::string>& flags) {
  const pose::PoseDbnClassifier classifier = load_model(require(flags, "model"));
  const synth::Dataset dataset = synth::load_dataset(require(flags, "data"));
  core::ClipEngine engine({}, engine_config(flags));
  const core::DatasetEvaluation eval = core::evaluate_dataset(classifier, engine, dataset.test);
  for (std::size_t i = 0; i < eval.clips.size(); ++i) {
    std::printf("clip %zu: %.1f%% pose accuracy (%zu/%zu)\n", i + 1,
                100.0 * eval.clips[i].accuracy(), eval.clips[i].correct,
                eval.clips[i].frames);
  }
  std::printf("overall: %.1f%%\n", 100.0 * eval.overall_accuracy());
  return 0;
}

int usage() {
  std::printf("usage:\n"
              "  sljtool generate --out DIR [--seed N]\n"
              "  sljtool train    --data DIR --model FILE\n"
              "  sljtool analyze  --model FILE --clip DIR [--ppm PIXELS_PER_METER]\n"
              "                   [--workers N] [--tracker 0|1]\n"
              "  sljtool evaluate --model FILE --data DIR [--workers N] [--tracker 0|1]\n"
              "  sljtool stream   --model FILE --clip DIR [--sessions N] [--workers N]\n"
              "                   [--decoder online|filtering] [--tracker 0|1]\n"
              "  sljtool serve    [--model FILE] [--clip DIR | --seed N] [--sessions N]\n"
              "                   [--seconds S] [--fps F] [--jitter 0..1] [--workers N]\n"
              "                   [--policy block|drop-oldest|reject-newest] [--capacity N]\n"
              "                   [--rate TOKENS_PER_S] [--burst N]\n"
              "  sljtool record   --out FILE [--model FILE] [--clip DIR | --seed N] [--mini 0|1]\n"
              "                   [--sessions N] [--frames N] [--pushes-per-round N] [--fps F]\n"
              "                   [--policy block|drop-oldest|reject-newest] [--capacity N]\n"
              "                   [--rate TOKENS_PER_S] [--burst N] [--workers N]\n"
              "  sljtool replay   --trace FILE [--model FILE] [--workers N] [--tolerance X]\n"
              "                   [--profile-json FILE]\n"
              "  sljtool top      [--model FILE] [--clip DIR | --seed N] [--sessions N]\n"
              "                   [--seconds S] [--fps F] [--jitter 0..1] [--workers N]\n"
              "                   [--policy block|drop-oldest|reject-newest] [--capacity N]\n"
              "                   [--rate TOKENS_PER_S] [--burst N] [--refresh MS] [--plain 0|1]\n"
              "                   [--slo-p99 MS] [--slo-drop 0..1] [--slo-breach-after N]\n"
              "                   [--slo-clear-after N] [--incident-dir DIR] [--max-incidents N]\n"
              "                   [--trace-json FILE]\n"
              "  sljtool trace-export --trace FILE --out FILE [--model FILE] [--workers N]\n"
              "                   [--tolerance X]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const std::string cmd = argv[1];
    const auto flags = parse_flags(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(flags);
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "analyze") return cmd_analyze(flags);
    if (cmd == "evaluate") return cmd_evaluate(flags);
    if (cmd == "stream") return cmd_stream(flags);
    if (cmd == "serve") return cmd_serve(flags);
    if (cmd == "record") return cmd_record(flags);
    if (cmd == "replay") return cmd_replay(flags);
    if (cmd == "top") return cmd_top(flags);
    if (cmd == "trace-export") return cmd_trace_export(flags);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
