// Coach feedback: the application the paper motivates — analyze jumps and
// point out movements that violate the standing-long-jump standard, with
// advice for the student. We compare a correct jump against three faulty
// ones (no arm swing, no crouch, stiff landing).
#include <cstdio>

#include "core/analyzer.hpp"
#include "synth/dataset.hpp"

namespace {

slj::core::JumpAnalyzer make_trained_analyzer() {
  slj::synth::DatasetSpec spec;
  spec.seed = 4711;
  spec.train_clip_frames = {44, 43, 44, 43, 44, 43, 44, 43};
  spec.test_clip_frames = {};
  const slj::synth::Dataset dataset = slj::synth::generate_dataset(spec);

  slj::core::JumpAnalyzer analyzer({}, {});
  analyzer.train(dataset);
  return analyzer;
}

void assess(slj::core::JumpAnalyzer& analyzer, const char* title,
            const slj::synth::FaultFlags& faults, std::uint32_t seed) {
  slj::synth::ClipSpec cs;
  cs.seed = seed;
  cs.frame_count = 45;
  cs.faults = faults;
  const slj::synth::Clip clip = slj::synth::generate_clip(cs);
  const slj::core::ClipAnalysis analysis = analyzer.analyze(clip);
  std::printf("=== %s ===\n%s\n", title, analysis.report.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("training the analyzer...\n\n");
  slj::core::JumpAnalyzer analyzer = make_trained_analyzer();

  assess(analyzer, "well-executed jump", {}, 99);

  slj::synth::FaultFlags no_swing;
  no_swing.no_arm_swing = true;
  assess(analyzer, "jump without arm swing", no_swing, 100);

  slj::synth::FaultFlags no_crouch;
  no_crouch.no_crouch = true;
  assess(analyzer, "jump without preparatory crouch", no_crouch, 101);

  slj::synth::FaultFlags stiff;
  stiff.stiff_landing = true;
  assess(analyzer, "jump with stiff-legged landing", stiff, 102);
  return 0;
}
