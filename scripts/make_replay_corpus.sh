#!/usr/bin/env bash
# Regenerates the golden replay corpus under tests/corpus/.
#
# Each trace is a deterministic 3-session ingest run recorded by
# `sljtool record` (manual clock, inline drains — see cmd_record), one per
# backpressure policy plus a rate-limited run, on the tiny noise-free studio
# camera so the files stay small enough to commit. `sljtool record`
# self-checks every trace replays bit-identically before this script
# succeeds; test_replay and `scripts/ci.sh --replay` then replay the corpus
# as regression tests.
#
# Only rerun this when the trace format version bumps or the recorded
# scenario deliberately changes — regenerating rewrites the golden files.
#
# Usage: scripts/make_replay_corpus.sh [path/to/sljtool]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SLJTOOL="${1:-$ROOT/build/sljtool}"
CORPUS="$ROOT/tests/corpus"

if [[ ! -x "$SLJTOOL" ]]; then
  echo "error: sljtool not found at $SLJTOOL (build first, or pass its path)" >&2
  exit 1
fi

mkdir -p "$CORPUS"

common=(--mini 1 --sessions 3 --frames 12 --fps 60 --capacity 2 --seed 2008)

"$SLJTOOL" record --out "$CORPUS/drop_oldest.sljtrace" "${common[@]}" \
  --policy drop-oldest --pushes-per-round 3
"$SLJTOOL" record --out "$CORPUS/reject_newest.sljtrace" "${common[@]}" \
  --policy reject-newest --pushes-per-round 3
"$SLJTOOL" record --out "$CORPUS/block.sljtrace" "${common[@]}" \
  --policy block --pushes-per-round 2
"$SLJTOOL" record --out "$CORPUS/rate_limited.sljtrace" "${common[@]}" \
  --policy drop-oldest --pushes-per-round 2 --rate 30 --burst 2

ls -la "$CORPUS"/*.sljtrace
