#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full gtest suite via ctest.
# Usage: scripts/ci.sh [build-dir] [--sanitize|--tsan|--tsan-stress]
#   --sanitize     Debug build with ASan+UBSan (keeps the streaming/worker-pool
#                  concurrency sanitizer-clean).
#   --tsan         Debug build with ThreadSanitizer (pins that per-lane
#                  FrameWorkspace reuse in the engines stays data-race-free).
#   --tsan-stress  TSan build of the ingest plane only, running the
#                  multi-producer ingest stress tests repeatedly — the
#                  dedicated race hunt for FrameQueue/IngestRouter/
#                  IngestService under concurrent producers.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="build"
CMAKE_ARGS=()
MODE="full"
for arg in "$@"; do
  case "$arg" in
    --sanitize)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all"
      )
      ;;
    --tsan)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        "-DCMAKE_CXX_FLAGS=-fsanitize=thread -fno-sanitize-recover=all"
      )
      ;;
    --tsan-stress)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        "-DCMAKE_CXX_FLAGS=-fsanitize=thread -fno-sanitize-recover=all"
      )
      MODE="tsan-stress"
      ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
if [[ "$MODE" == "tsan-stress" ]]; then
  cmake --build "$BUILD_DIR" -j --target test_ingest
  # Repetition is what shakes out rare interleavings: the blocked-producer
  # wakeups, drain-vs-push races, and eviction-vs-push refusals.
  "$BUILD_DIR/test_ingest" \
    --gtest_filter='IngestService.MultiProducerStress*:FrameQueue.*' \
    --gtest_repeat=5
else
  cmake --build "$BUILD_DIR" -j
  cd "$BUILD_DIR"
  ctest --output-on-failure -j "$(nproc)"
fi
