#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full gtest suite via ctest.
# Usage: scripts/ci.sh [build-dir] [--sanitize|--tsan|--tsan-stress|--replay|--analyze|--incident] [--simd-off]
#   --sanitize     Debug build with ASan+UBSan (keeps the streaming/worker-pool
#                  concurrency sanitizer-clean).
#   --tsan         Debug build with ThreadSanitizer (pins that per-lane
#                  FrameWorkspace reuse in the engines stays data-race-free).
#   --tsan-stress  TSan build of the ingest plane only, running the
#                  multi-producer ingest stress tests repeatedly — the
#                  dedicated race hunt for FrameQueue/IngestRouter/
#                  IngestService under concurrent producers.
#   --incident     Observability end-to-end lane: builds sljtool, runs the
#                  `top` monitor headless against synthetic producers with a
#                  sub-microsecond p99 budget so the SLO breaches on the
#                  first evaluation, asserts the flight recorder dumped an
#                  incident .sljtrace, and replays every incident bit-for-bit
#                  at 1, 2, and 4 workers. Incident traces, the tracer
#                  timeline, and the final metrics snapshot land in
#                  <build-dir>/incident_artifacts/ for upload.
#   --analyze      Static-analysis lane: library build with the warning
#                  baseline promoted to errors (-Wall -Wextra -Wshadow
#                  -Wconversion -Werror), the slj_lint invariant linter
#                  (AST engine in --strict-engine mode on clang hosts,
#                  lexical with a note elsewhere) with the suppression
#                  ratchet, the negative-compile suite
#                  (tests/test_static_analysis.cmake), and — when
#                  clang/clang-tidy are on PATH — Clang thread-safety
#                  analysis, the clang-static-analyzer baseline diff
#                  (scripts/lint/run_clang_analyzer.py), and the curated
#                  .clang-tidy profile restricted to files changed vs
#                  $SLJ_TIDY_BASE (default origin/main; full tree with
#                  --analyze-full). Findings land in
#                  <build-dir>/analyze_artifacts/ for upload. Clang-only
#                  steps are skipped with a note on clang-less hosts; the
#                  portable steps still gate.
#   --analyze-full clang-tidy over the whole tree instead of the changed
#                  set (the scheduled-job configuration).
#   --simd-off     Configure with -DSLJ_SIMD=OFF (the scalar reference
#                  backend). Composes with any mode above: the SIMD and
#                  scalar paths promise bit-identical output, so every lane
#                  must hold on both. Without it, the build uses SLJ_SIMD's
#                  AUTO default (whatever the compiler already targets).
#   --replay       ASan+UBSan build with the profiler compiled in; runs the
#                  replay/profiler/format-fuzz suites, then replays every
#                  checked-in golden trace through `sljtool replay` at
#                  several worker counts, writing per-trace profiler
#                  snapshots to <build-dir>/replay_artifacts/ for upload.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
BUILD_DIR="build"
CMAKE_ARGS=()
MODE="full"
SIMD_OFF=0
TIDY_FULL=0
for arg in "$@"; do
  case "$arg" in
    --sanitize)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all"
      )
      ;;
    --tsan)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        "-DCMAKE_CXX_FLAGS=-fsanitize=thread -fno-sanitize-recover=all"
      )
      ;;
    --tsan-stress)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        "-DCMAKE_CXX_FLAGS=-fsanitize=thread -fno-sanitize-recover=all"
      )
      MODE="tsan-stress"
      ;;
    --replay)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        -DSLJ_ENABLE_PROFILER=ON
        "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all"
      )
      MODE="replay"
      ;;
    --analyze)
      MODE="analyze"
      ;;
    --incident)
      MODE="incident"
      ;;
    --analyze-full)
      MODE="analyze"
      TIDY_FULL=1
      ;;
    --simd-off)
      CMAKE_ARGS+=(-DSLJ_SIMD=OFF)
      SIMD_OFF=1
      ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

if [[ "$MODE" == "analyze" ]]; then
  # 1. Warning baseline as errors, compile database exported. clang++ is
  #    preferred when present so the thread-safety annotations are actually
  #    analyzed rather than compiled away.
  ANALYZE_ARGS=(-DCMAKE_BUILD_TYPE=Release -DSLJ_WERROR=ON
                -DSLJ_BUILD_BENCHES=OFF -DSLJ_BUILD_EXAMPLES=OFF)
  if [[ "$SIMD_OFF" == 1 ]]; then
    ANALYZE_ARGS+=(-DSLJ_SIMD=OFF)
  fi
  if command -v clang++ >/dev/null 2>&1; then
    ANALYZE_ARGS+=(-DCMAKE_CXX_COMPILER=clang++)
    echo "analyze: using clang++ (thread-safety analysis active)"
  else
    echo "analyze: clang++ not found; building with the default compiler" \
         "(thread-safety annotations compile away — see core/annotations.hpp)"
  fi
  cmake -B "$BUILD_DIR" -S . "${ANALYZE_ARGS[@]}"
  cmake --build "$BUILD_DIR" -j --target slj

  ARTIFACTS="$BUILD_DIR/analyze_artifacts"
  mkdir -p "$ARTIFACTS"

  # 2. Repo-specific invariant linter. On clang hosts the AST engine is
  #    mandatory (--strict-engine exits 2 on any lexical fallback, so a
  #    degraded run can never pass silently); elsewhere the lexical engine
  #    is the honest configuration and is named out loud. Both runs carry
  #    the suppression ratchet.
  LINT_ARGS=(--root . --compdb "$BUILD_DIR/compile_commands.json"
             --suppression-baseline scripts/lint/suppressions_baseline.txt)
  if command -v clang++ >/dev/null 2>&1; then
    python3 scripts/lint/slj_lint.py "${LINT_ARGS[@]}" \
      --engine ast --strict-engine 2>&1 | tee "$ARTIFACTS/slj_lint.txt"
  else
    echo "analyze: clang++ not found; slj_lint runs the lexical engine" \
         "(the AST overlay needs clang++ -ast-dump)"
    python3 scripts/lint/slj_lint.py "${LINT_ARGS[@]}" \
      --engine lexical 2>&1 | tee "$ARTIFACTS/slj_lint.txt"
  fi

  # 3. Negative-compile + linter-fixture suite: proves the gates actually
  #    reject violations, not just that clean code passes.
  cmake -DSLJ_BUILD_DIR="$BUILD_DIR" -P tests/test_static_analysis.cmake

  # 4. clang-static-analyzer over the compile database, failing only on
  #    findings absent from scripts/lint/analyzer_baseline.txt.
  if command -v clang++ >/dev/null 2>&1; then
    python3 scripts/lint/run_clang_analyzer.py --root . \
      --compdb "$BUILD_DIR/compile_commands.json" \
      --raw-out "$ARTIFACTS/clang_analyzer.txt"
  else
    echo "analyze: clang++ not found; skipping the clang-static-analyzer lane"
  fi

  # 5. clang-tidy, when available. PR runs cover only files changed vs the
  #    merge base ($SLJ_TIDY_BASE, default origin/main) so turnaround stays
  #    proportional to the diff; the scheduled job passes --analyze-full to
  #    sweep the whole tree.
  if command -v clang-tidy >/dev/null 2>&1; then
    if [[ "$TIDY_FULL" == 1 ]]; then
      mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
      echo "analyze: clang-tidy over the full tree (${#tidy_sources[@]} files)"
    else
      TIDY_BASE="${SLJ_TIDY_BASE:-origin/main}"
      if git rev-parse --verify --quiet "$TIDY_BASE" >/dev/null; then
        mapfile -t tidy_sources < <(
          git diff --name-only --diff-filter=d "$(git merge-base "$TIDY_BASE" HEAD)" \
            -- 'src/*.cpp' | sort)
        echo "analyze: clang-tidy over ${#tidy_sources[@]} file(s) changed" \
             "vs $TIDY_BASE (--analyze-full for the whole tree)"
      else
        echo "analyze: base ref $TIDY_BASE not found; clang-tidy over the full tree"
        mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
      fi
    fi
    if [[ ${#tidy_sources[@]} -gt 0 ]]; then
      clang-tidy -p "$BUILD_DIR" --quiet "${tidy_sources[@]}" \
        2>&1 | tee "$ARTIFACTS/clang_tidy.txt"
    else
      echo "analyze: no changed src/*.cpp files; clang-tidy skipped"
    fi
  else
    echo "analyze: clang-tidy not found; skipping the .clang-tidy profile"
  fi
  echo "analyze: all gates passed (findings in $ARTIFACTS/)"
  exit 0
fi

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
if [[ "$MODE" == "replay" ]]; then
  cmake --build "$BUILD_DIR" -j --target \
    test_replay test_profiler test_clip_io test_image_io sljtool
  # The deserialization fuzz sweeps (truncations, bit flips, oversized
  # length prefixes) run under ASan/UBSan here — "fails cleanly" means no
  # sanitizer report, not just a caught exception.
  "$BUILD_DIR/test_replay"
  "$BUILD_DIR/test_profiler"
  "$BUILD_DIR/test_clip_io"
  "$BUILD_DIR/test_image_io"

  # Golden corpus through the CLI at several worker counts; each run must
  # report bit-identical and leaves its profiler snapshot as an artifact.
  ARTIFACTS="$BUILD_DIR/replay_artifacts"
  mkdir -p "$ARTIFACTS"
  shopt -s nullglob
  traces=(tests/corpus/*.sljtrace)
  if [[ ${#traces[@]} -eq 0 ]]; then
    echo "error: no traces in tests/corpus/" >&2
    exit 1
  fi
  for trace in "${traces[@]}"; do
    name="$(basename "$trace" .sljtrace)"
    for workers in 1 4; do
      "$BUILD_DIR/sljtool" replay --trace "$trace" --workers "$workers" \
        --tolerance 1e-9 \
        --profile-json "$ARTIFACTS/${name}_w${workers}_profile.json"
    done
  done
  echo "replay artifacts in $ARTIFACTS/"
elif [[ "$MODE" == "incident" ]]; then
  cmake --build "$BUILD_DIR" -j --target sljtool

  ARTIFACTS="$BUILD_DIR/incident_artifacts"
  rm -rf "$ARTIFACTS"
  mkdir -p "$ARTIFACTS"

  # A 0.0001 ms p99 budget is unmeetable by construction, so the first SLO
  # evaluation breaches and the monitor dumps a flight-recorder incident.
  # --plain keeps the output log-friendly; the run still gates on its own
  # push/deliver/drop accounting.
  "$BUILD_DIR/sljtool" top --seed 7 --sessions 3 --seconds 2 --fps 60 \
    --workers 2 --policy drop-oldest --capacity 4 \
    --slo-p99 0.0001 --slo-breach-after 1 --plain 1 \
    --incident-dir "$ARTIFACTS" --max-incidents 2 \
    --trace-json "$ARTIFACTS/trace_export.json" \
    | tee "$ARTIFACTS/top.log"

  shopt -s nullglob
  incidents=("$ARTIFACTS"/incident_*.sljtrace)
  if [[ ${#incidents[@]} -eq 0 ]]; then
    echo "error: forced SLO breach produced no incident .sljtrace" >&2
    exit 1
  fi
  echo "incident lane: ${#incidents[@]} incident trace(s) dumped"

  # The acceptance bar for a flight-recorder dump is the same as for a
  # checked-in golden trace: replay must be bit-identical at every worker
  # count, or the incident is not actionable evidence.
  for trace in "${incidents[@]}"; do
    for workers in 1 2 4; do
      "$BUILD_DIR/sljtool" replay --trace "$trace" --workers "$workers"
    done
  done
  echo "incident artifacts in $ARTIFACTS/"
elif [[ "$MODE" == "tsan-stress" ]]; then
  cmake --build "$BUILD_DIR" -j --target test_ingest
  # Repetition is what shakes out rare interleavings: the blocked-producer
  # wakeups, drain-vs-push races, and eviction-vs-push refusals.
  "$BUILD_DIR/test_ingest" \
    --gtest_filter='IngestService.MultiProducerStress*:FrameQueue.*' \
    --gtest_repeat=5
else
  cmake --build "$BUILD_DIR" -j
  cd "$BUILD_DIR" || exit 1
  ctest --output-on-failure -j "$(nproc)"
fi
