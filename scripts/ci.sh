#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full gtest suite via ctest.
# Usage: scripts/ci.sh [build-dir] [--sanitize|--tsan]
#   --sanitize   Debug build with ASan+UBSan (keeps the streaming/worker-pool
#                concurrency sanitizer-clean).
#   --tsan       Debug build with ThreadSanitizer (pins that per-lane
#                FrameWorkspace reuse in the engines stays data-race-free).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="build"
CMAKE_ARGS=()
for arg in "$@"; do
  case "$arg" in
    --sanitize)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all"
      )
      ;;
    --tsan)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        "-DCMAKE_CXX_FLAGS=-fsanitize=thread -fno-sanitize-recover=all"
      )
      ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)"
