#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full gtest suite via ctest.
# Usage: scripts/ci.sh [build-dir] [--sanitize|--tsan|--tsan-stress|--replay]
#   --sanitize     Debug build with ASan+UBSan (keeps the streaming/worker-pool
#                  concurrency sanitizer-clean).
#   --tsan         Debug build with ThreadSanitizer (pins that per-lane
#                  FrameWorkspace reuse in the engines stays data-race-free).
#   --tsan-stress  TSan build of the ingest plane only, running the
#                  multi-producer ingest stress tests repeatedly — the
#                  dedicated race hunt for FrameQueue/IngestRouter/
#                  IngestService under concurrent producers.
#   --replay       ASan+UBSan build with the profiler compiled in; runs the
#                  replay/profiler/format-fuzz suites, then replays every
#                  checked-in golden trace through `sljtool replay` at
#                  several worker counts, writing per-trace profiler
#                  snapshots to <build-dir>/replay_artifacts/ for upload.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="build"
CMAKE_ARGS=()
MODE="full"
for arg in "$@"; do
  case "$arg" in
    --sanitize)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all"
      )
      ;;
    --tsan)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        "-DCMAKE_CXX_FLAGS=-fsanitize=thread -fno-sanitize-recover=all"
      )
      ;;
    --tsan-stress)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        "-DCMAKE_CXX_FLAGS=-fsanitize=thread -fno-sanitize-recover=all"
      )
      MODE="tsan-stress"
      ;;
    --replay)
      CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=Debug
        -DSLJ_ENABLE_PROFILER=ON
        "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all"
      )
      MODE="replay"
      ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
if [[ "$MODE" == "replay" ]]; then
  cmake --build "$BUILD_DIR" -j --target \
    test_replay test_profiler test_clip_io test_image_io sljtool
  # The deserialization fuzz sweeps (truncations, bit flips, oversized
  # length prefixes) run under ASan/UBSan here — "fails cleanly" means no
  # sanitizer report, not just a caught exception.
  "$BUILD_DIR/test_replay"
  "$BUILD_DIR/test_profiler"
  "$BUILD_DIR/test_clip_io"
  "$BUILD_DIR/test_image_io"

  # Golden corpus through the CLI at several worker counts; each run must
  # report bit-identical and leaves its profiler snapshot as an artifact.
  ARTIFACTS="$BUILD_DIR/replay_artifacts"
  mkdir -p "$ARTIFACTS"
  shopt -s nullglob
  traces=(tests/corpus/*.sljtrace)
  if [[ ${#traces[@]} -eq 0 ]]; then
    echo "error: no traces in tests/corpus/" >&2
    exit 1
  fi
  for trace in "${traces[@]}"; do
    name="$(basename "$trace" .sljtrace)"
    for workers in 1 4; do
      "$BUILD_DIR/sljtool" replay --trace "$trace" --workers "$workers" \
        --tolerance 1e-9 \
        --profile-json "$ARTIFACTS/${name}_w${workers}_profile.json"
    done
  done
  echo "replay artifacts in $ARTIFACTS/"
elif [[ "$MODE" == "tsan-stress" ]]; then
  cmake --build "$BUILD_DIR" -j --target test_ingest
  # Repetition is what shakes out rare interleavings: the blocked-producer
  # wakeups, drain-vs-push races, and eviction-vs-push refusals.
  "$BUILD_DIR/test_ingest" \
    --gtest_filter='IngestService.MultiProducerStress*:FrameQueue.*' \
    --gtest_repeat=5
else
  cmake --build "$BUILD_DIR" -j
  cd "$BUILD_DIR"
  ctest --output-on-failure -j "$(nproc)"
fi
