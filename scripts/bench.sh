#!/usr/bin/env bash
# Perf trajectory: builds Release, runs the engine + ingest benches, and
# emits BENCH_pr5.json (frames/sec, p50/p99 per-frame latency, and the
# ingest plane's sustained throughput / drop rate / end-to-end latency).
# CI uploads the file as an artifact so regressions are visible PR over PR.
# Usage: scripts/bench.sh [build-dir] [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_pr5.json}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target perf_clip_engine perf_stream_engine perf_ingest

CLIP_JSON="$(mktemp)"
STREAM_JSON="$(mktemp)"
INGEST_JSON="$(mktemp)"
trap 'rm -f "$CLIP_JSON" "$STREAM_JSON" "$INGEST_JSON"' EXIT

"$BUILD_DIR/perf_clip_engine" --json "$CLIP_JSON"
"$BUILD_DIR/perf_stream_engine" --json "$STREAM_JSON"
"$BUILD_DIR/perf_ingest" --json "$INGEST_JSON"

{
  echo '{'
  echo '  "bench": "pr5-async-ingest",'
  echo '  "clip_engine":'
  sed 's/^/  /' "$CLIP_JSON" | sed '$ s/$/,/'
  echo '  "stream_engine":'
  sed 's/^/  /' "$STREAM_JSON" | sed '$ s/$/,/'
  echo '  "ingest_engine":'
  sed 's/^/  /' "$INGEST_JSON"
  echo '}'
} > "$OUT"

echo "wrote $OUT"
