#!/usr/bin/env bash
# Perf trajectory: builds Release, runs the engine + ingest + profiler
# benches, and emits BENCH_pr10.json (frames/sec, p50/p99 per-frame latency,
# the ingest plane's sustained throughput / drop rate / end-to-end latency,
# and the profiler + tracer overhead guards), stamped with build provenance
# (git SHA, compiler + flags, SIMD backend). CI uploads the file as an
# artifact so regressions are visible PR over PR.
#
# After the per-PR file lands, every BENCH_pr*.json present in the repo is
# merged into BENCH_trajectory.json — one document holding the whole perf
# history keyed by PR, with its own provenance stamp — so a reviewer can
# diff throughput across PRs without fishing artifacts out of old runs.
#
# SIMD: if the host CPU advertises AVX2, the build is configured with
# -DSLJ_SIMD=AVX2 (4 f64 lanes instead of SSE2's 2); override by exporting
# SLJ_BENCH_SIMD=OFF|SSE2|AVX2|NEON|AUTO.
#
# Failure contract: if ANY bench binary fails, this script exits non-zero
# and writes NO output file. The JSON is assembled in a temp file and moved
# into place atomically only after every section validated, so a partial or
# truncated BENCH_*.json can never masquerade as a complete run.
#
# Usage: scripts/bench.sh [build-dir] [output.json]
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_pr10.json}"

# Pick the widest backend the host supports unless the caller pinned one.
if [[ -z "${SLJ_BENCH_SIMD:-}" ]]; then
  if grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
    SLJ_BENCH_SIMD=AVX2
  else
    SLJ_BENCH_SIMD=AUTO
  fi
fi

# Provenance for bench_common.hpp's host_json(); benches run fine without it.
SLJ_GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
export SLJ_GIT_SHA

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DSLJ_SIMD="$SLJ_BENCH_SIMD"
cmake --build "$BUILD_DIR" -j --target \
  perf_clip_engine perf_stream_engine perf_ingest perf_profiler

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Runs one bench; on failure, reports which one died and aborts the whole
# script (set -e) before any output file exists.
run_bench() {
  local name="$1" json="$2"
  shift 2
  if ! "$BUILD_DIR/$name" --json "$json" "$@"; then
    echo "error: bench '$name' failed; not writing $OUT" >&2
    exit 1
  fi
  # An empty or unterminated JSON section means the bench died mid-write.
  if [[ ! -s "$json" ]] || [[ "$(tail -c 2 "$json" | head -c 1)" != "}" ]]; then
    echo "error: bench '$name' produced incomplete JSON; not writing $OUT" >&2
    exit 1
  fi
}

run_bench perf_clip_engine "$WORK/clip.json"
run_bench perf_stream_engine "$WORK/stream.json"
run_bench perf_ingest "$WORK/ingest.json"
run_bench perf_profiler "$WORK/profiler.json"

{
  echo '{'
  echo '  "bench": "pr10-observability",'
  echo '  "clip_engine":'
  sed 's/^/  /' "$WORK/clip.json" | sed '$ s/$/,/'
  echo '  "stream_engine":'
  sed 's/^/  /' "$WORK/stream.json" | sed '$ s/$/,/'
  echo '  "ingest_engine":'
  sed 's/^/  /' "$WORK/ingest.json" | sed '$ s/$/,/'
  echo '  "profiler_overhead":'
  sed 's/^/  /' "$WORK/profiler.json"
  echo '}'
} > "$WORK/combined.json"

mv "$WORK/combined.json" "$OUT"
echo "wrote $OUT"

# ---- trajectory merge -------------------------------------------------------
# Fold every per-PR bench file into one history document. Entries are keyed
# by the pr tag embedded in the filename and ordered numerically (pr4 before
# pr10), and the merge is assembled in the temp dir and moved into place
# atomically — same contract as the per-PR file: no partial output, ever.
TRAJECTORY="BENCH_trajectory.json"
mapfile -t BENCH_FILES < <(ls BENCH_pr*.json 2>/dev/null | sort -V)
if [[ "${#BENCH_FILES[@]}" -gt 0 ]]; then
  {
    echo '{'
    echo '  "trajectory": "conf_icdcsw_HsuYCH08 perf history",'
    echo "  \"generated_at_sha\": \"$SLJ_GIT_SHA\","
    echo "  \"generated_by\": \"scripts/bench.sh\","
    echo "  \"entries\": {"
    last_idx=$(( ${#BENCH_FILES[@]} - 1 ))
    for i in "${!BENCH_FILES[@]}"; do
      f="${BENCH_FILES[$i]}"
      tag="${f#BENCH_}"
      tag="${tag%.json}"
      echo "    \"$tag\":"
      if [[ "$i" -lt "$last_idx" ]]; then
        sed 's/^/    /' "$f" | sed '$ s/$/,/'
      else
        sed 's/^/    /' "$f"
      fi
    done
    echo '  }'
    echo '}'
  } > "$WORK/trajectory.json"
  mv "$WORK/trajectory.json" "$TRAJECTORY"
  echo "wrote $TRAJECTORY (${#BENCH_FILES[@]} entries)"
fi
