#!/usr/bin/env bash
# Perf trajectory: builds Release, runs the two engine benches, and emits
# BENCH_pr4.json (frames/sec + p50/p99 per-frame latency). CI uploads the
# file as an artifact so throughput regressions are visible PR over PR.
# Usage: scripts/bench.sh [build-dir] [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_pr4.json}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target perf_clip_engine perf_stream_engine

CLIP_JSON="$(mktemp)"
STREAM_JSON="$(mktemp)"
trap 'rm -f "$CLIP_JSON" "$STREAM_JSON"' EXIT

"$BUILD_DIR/perf_clip_engine" --json "$CLIP_JSON"
"$BUILD_DIR/perf_stream_engine" --json "$STREAM_JSON"

{
  echo '{'
  echo '  "bench": "pr4-frame-workspace",'
  echo '  "clip_engine":'
  sed 's/^/  /' "$CLIP_JSON" | sed '$ s/$/,/'
  echo '  "stream_engine":'
  sed 's/^/  /' "$STREAM_JSON"
  echo '}'
} > "$OUT"

echo "wrote $OUT"
