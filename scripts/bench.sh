#!/usr/bin/env bash
# Perf trajectory: builds Release, runs the engine + ingest + profiler
# benches, and emits BENCH_pr6.json (frames/sec, p50/p99 per-frame latency,
# the ingest plane's sustained throughput / drop rate / end-to-end latency,
# and the profiler overhead guard). CI uploads the file as an artifact so
# regressions are visible PR over PR.
#
# Failure contract: if ANY bench binary fails, this script exits non-zero
# and writes NO output file. The JSON is assembled in a temp file and moved
# into place atomically only after every section validated, so a partial or
# truncated BENCH_*.json can never masquerade as a complete run.
#
# Usage: scripts/bench.sh [build-dir] [output.json]
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_pr6.json}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target \
  perf_clip_engine perf_stream_engine perf_ingest perf_profiler

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Runs one bench; on failure, reports which one died and aborts the whole
# script (set -e) before any output file exists.
run_bench() {
  local name="$1" json="$2"
  shift 2
  if ! "$BUILD_DIR/$name" --json "$json" "$@"; then
    echo "error: bench '$name' failed; not writing $OUT" >&2
    exit 1
  fi
  # An empty or unterminated JSON section means the bench died mid-write.
  if [[ ! -s "$json" ]] || [[ "$(tail -c 2 "$json" | head -c 1)" != "}" ]]; then
    echo "error: bench '$name' produced incomplete JSON; not writing $OUT" >&2
    exit 1
  fi
}

run_bench perf_clip_engine "$WORK/clip.json"
run_bench perf_stream_engine "$WORK/stream.json"
run_bench perf_ingest "$WORK/ingest.json"
run_bench perf_profiler "$WORK/profiler.json"

{
  echo '{'
  echo '  "bench": "pr6-record-replay",'
  echo '  "clip_engine":'
  sed 's/^/  /' "$WORK/clip.json" | sed '$ s/$/,/'
  echo '  "stream_engine":'
  sed 's/^/  /' "$WORK/stream.json" | sed '$ s/$/,/'
  echo '  "ingest_engine":'
  sed 's/^/  /' "$WORK/ingest.json" | sed '$ s/$/,/'
  echo '  "profiler_overhead":'
  sed 's/^/  /' "$WORK/profiler.json"
  echo '}'
} > "$WORK/combined.json"

mv "$WORK/combined.json" "$OUT"
echo "wrote $OUT"
