#!/usr/bin/env python3
"""slj_lint: repo-specific invariant linter for the slj codebase.

Enforces seven invariants the compiler cannot see:

  hot-path-alloc   Functions marked SLJ_HOT_PATH (the steady-state per-frame
                   kernels: *_into, tick_into, process_into) must not allocate.
                   Banned outright: new expressions, the malloc family,
                   make_unique/make_shared, std::to_string, and by-value
                   locals of owning container types. Growth calls
                   (push_back/emplace_back/resize/resize_discard/assign/
                   reserve/insert/append) are allowed only when the receiver
                   is rooted in a reference parameter or a local reference
                   alias — the sanctioned recycled-workspace idiom
                   (`auto& cand = ws.thin_candidates_first;`). `throw`
                   statements are exempt: they are the cold error path.

  unchecked-read   Deserializer functions (image_io.cpp, clip_io.cpp,
                   trace_format.cpp) that size containers from decoded
                   values must carry a guard in the same function body:
                   a kMax* cap, need()/fail()/check_* calls, or a throw.
                   Attacker-controlled lengths must never reach resize()
                   unchecked.

  naked-mutex      std::mutex / std::lock_guard / std::unique_lock /
                   std::scoped_lock / std::condition_variable are banned in
                   src/ outside core/annotations.hpp. All locking goes
                   through slj::Mutex / slj::LockGuard / slj::CondVar so
                   Clang thread-safety analysis sees every acquisition.

  simd-dispatch    SIMD feature macros (__SSE*, __AVX*, __ARM_NEON*,
                   SLJ_SIMD_*) are banned in src/ outside core/simd.hpp —
                   backend selection happens exactly once, in the Active
                   alias; kernels are templated on the backend tag. Also
                   bans #if / #ifdef / #ifndef inside SLJ_HOT_PATH bodies:
                   a hot kernel must be one preprocessor-free code path,
                   not an #ifdef ladder that rots on untested backends.

  layering         Quoted includes in src/ must respect the explicit module
                   DAG in scripts/lint/layers.toml (core_base at the bottom,
                   replay at the top). A file may include only its own module
                   and the modules its layer explicitly depends on — upward
                   and sideways dependencies are findings, and a new edge
                   requires an explicit layers.toml change in the same
                   commit. Includes must be written in canonical
                   "module/header.hpp" form (no "../", no bare names).

  atomics-discipline
                   Every memory_order_relaxed site must carry a
                   `// slj-atomic: <role>` tag (same line or the line above)
                   with a role from {counter, snapshot, flag, seqlock} —
                   see scripts/lint/README.md for the taxonomy. A relaxed
                   read-modify-write whose result feeds control flow
                   (if/while/for condition or return) is flagged unless the
                   tag's role is counter, snapshot, or seqlock: the `flag`
                   role and untagged sites get the acq_rel-hazard finding.
                   Inside SLJ_HOT_PATH bodies, atomic member operations with
                   a defaulted (seq_cst) memory order are banned outright —
                   the hot path never pays an implicit full fence.

  determinism      Bit-identical replay outlaws hidden iteration and FP
                   order dependence: no range-for over unordered containers
                   (copy to a vector and sort — skeleton_graph.cpp shows the
                   idiom); no single-precision `float` inside SLJ_HOT_PATH
                   kernels (integer lanes, or `double` for the exact
                   integer-sum SAT idiom, only); and no rand()/srand()/
                   time()/std::random_device anywhere in src/ outside
                   synth/ (clocks are injected, randomness is seeded).

Engines:
  ast (default)    The lexical checks always run as the floor; on top of
                   them `clang++ -ast-dump=json` (driven through
                   compile_commands.json when available) adds structural
                   checks per translation unit: macro-hidden allocations,
                   operator++ on atomics, range-fors whose unordered type
                   is only visible after template substitution. A TU whose
                   AST dump fails falls back to lexical-only — loudly, per
                   file, and fatally under --strict-engine. Headers are
                   lexical by construction (they have no compile entry) and
                   are not counted as fallbacks.
  lexical          Pure Python, token-level; runs anywhere, no clang.

Suppression: append `// slj-lint: allow(<rule>)` to the offending line or
the line above it. Use sparingly; every suppression is grep-able and the
count is ratcheted by scripts/lint/suppressions_baseline.txt (CI fails if
it grows without a baseline update in the same commit).

Exit status: 0 clean, 1 findings (or ratchet breach), 2 usage or
environment error (including --strict-engine fallbacks).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shlex
import shutil
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - python < 3.11
    tomllib = None

RULES = (
    "hot-path-alloc",
    "unchecked-read",
    "naked-mutex",
    "simd-dispatch",
    "layering",
    "atomics-discipline",
    "determinism",
)

HOT_PATH_MARKER = "SLJ_HOT_PATH"

# Deserializer files subject to the unchecked-read rule (repo-relative).
DESERIALIZER_FILES = {
    "src/imaging/image_io.cpp",
    "src/synth/clip_io.cpp",
    "src/replay/trace_format.cpp",
}

# Tokens that count as a length guard inside a deserializer function body.
GUARD_TOKENS = ("kMax", "need(", "fail(", "check_", "throw")

BANNED_ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()"  # new expressions (placement-new is still new storage upstream)
    r"|\bnew\s*\("
    r"|\b(?:std\s*::\s*)?(?:malloc|calloc|realloc|aligned_alloc|strdup)\s*\("
    r"|\b(?:std\s*::\s*)?make_(?:unique|shared)\b"
    r"|\bstd\s*::\s*to_string\s*\("
)

GROWTH_CALL_RE = re.compile(
    r"(?P<chain>[A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*(?:\.|->)\s*"
    r"(?P<method>push_back|emplace_back|resize|resize_discard|assign|reserve|insert|append)"
    r"\s*\("
)

# By-value local of an owning container type: `std::vector<T> v;` etc.
CONTAINER_LOCAL_RE = re.compile(
    r"^\s*(?:const\s+)?(?:std\s*::\s*)?"
    r"(?:vector|string|wstring|deque|list|map|set|multimap|multiset"
    r"|unordered_map|unordered_set|basic_string|valarray)\s*"
    r"(?:<[^;{}]*>)?\s+(?P<name>[A-Za-z_]\w*)\s*(?:[;={(]|$)",
    re.MULTILINE,
)

NAKED_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable|condition_variable_any)\b"
)

SIZING_CALL_RE = re.compile(r"\.\s*(resize|reserve|assign)\s*\(")

# SIMD feature-test / backend-selection macros; only core/simd.hpp may
# mention them (including in #if conditions).
SIMD_MACRO_RE = re.compile(r"\b(?:__SSE\w*|__AVX\w*|__ARM_NEON\w*|SLJ_SIMD_\w+)\b")

# Preprocessor conditionals (banned inside SLJ_HOT_PATH bodies).
PP_COND_RE = re.compile(r"^[ \t]*#[ \t]*if(?:n?def)?\b", re.MULTILINE)

REF_PARAM_RE = re.compile(r"&\s*(?:__restrict__\s+)?([A-Za-z_]\w*)\s*(?:,|\)|=|$)")
REF_ALIAS_RE = re.compile(
    r"(?:^|[;{}])\s*(?:const\s+)?(?:auto|[A-Za-z_][\w:]*(?:\s*<[^;{}=]*>)?)\s*&\s*"
    r"([A-Za-z_]\w*)\s*="
)

SUPPRESS_RE = re.compile(r"slj-lint:\s*allow\(\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)\s*\)")

# ---- layering --------------------------------------------------------------

QUOTED_INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]*"([^"]+)"', re.MULTILINE)
CANONICAL_INCLUDE_RE = re.compile(r"^[A-Za-z0-9_]+/[A-Za-z0-9_./]+$")

# ---- atomics-discipline ----------------------------------------------------

ATOMIC_ROLES = ("counter", "snapshot", "flag", "seqlock")
# Roles that sanction a relaxed RMW whose result feeds control flow: tickets
# and CAS-max loops (counter), monotonic republish loops (snapshot), and
# seqlock generation checks. A `flag` is load/store-only by definition.
RMW_CONTROL_OK_ROLES = frozenset(("counter", "snapshot", "seqlock"))

ATOMIC_TAG_RE = re.compile(r"slj-atomic:\s*([A-Za-z_-]+)")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
RMW_CALL_RE = re.compile(
    r"(?:\.|->)\s*(?P<method>fetch_(?:add|sub|and|or|xor)|exchange"
    r"|compare_exchange_(?:weak|strong))\s*\("
)
ATOMIC_MEMBER_RE = re.compile(
    r"(?P<chain>[A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*(?:\.|->)\s*"
    r"(?P<method>load|store|exchange|fetch_(?:add|sub|and|or|xor)"
    r"|compare_exchange_(?:weak|strong))\s*\("
)
# Methods that only exist on std::atomic; `.load`/`.store` also live on the
# SIMD vector types, so those two need the receiver to be a known atomic.
ATOMIC_ONLY_METHODS = frozenset((
    "exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "compare_exchange_weak", "compare_exchange_strong",
))
CONTROL_KEYWORD_RE = re.compile(r"\b(?:if|while|for|return)\b")

# ---- determinism -----------------------------------------------------------

UNORDERED_TYPE_RE = re.compile(r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*(?P<decl>[^;()]*?)\s*:\s*(?P<range>[^;]*?)\)\s*[{a-zA-Z]")
NONDET_SOURCE_RE = re.compile(
    r"(?<![\w.:>])(?:std\s*::\s*)?(?P<what>rand|srand)\s*\("
    r"|(?<![\w.:>])(?P<time>time)\s*\("
    r"|\b(?P<rd>random_device)\b"
)
FLOAT_TOKEN_RE = re.compile(r"\bfloat\b")


@dataclass
class Finding:
    path: Path
    line: int  # 1-based
    rule: str
    message: str

    def render(self, root: Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"

    def key(self) -> tuple:
        return (str(self.path), self.line, self.rule)


@dataclass
class EngineReport:
    """Per-file engine accounting for the summary line and --strict-engine."""

    per_file: dict[str, str] = field(default_factory=dict)
    fallbacks: list[tuple[str, str]] = field(default_factory=list)  # (rel, reason)

    def note(self, rel: str, engine: str) -> None:
        self.per_file[rel] = engine

    def note_fallback(self, rel: str, reason: str) -> None:
        self.per_file[rel] = "lexical (fallback)"
        self.fallbacks.append((rel, reason))

    def summary(self) -> str:
        counts: dict[str, int] = {}
        for eng in self.per_file.values():
            counts[eng] = counts.get(eng, 0) + 1
        parts = [f"{eng}={n}" for eng, n in sorted(counts.items())]
        return ", ".join(parts) if parts else "lexical=0"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string literals, and char literals.

    Length and newline positions are preserved so offsets map 1:1 back to
    the original text.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out[i] = out[i + 1] = " "
                    i += 2
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def strip_comments_only(text: str) -> str:
    """Blank out comments but keep string literals (include paths are
    strings — the layering rule needs them intact, but must not match a
    commented-out `#include`). Length/newlines preserved."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    i += 2
                    continue
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def suppressions(raw_lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line number -> set of rules allowed on that line."""
    allowed: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        # A suppression covers its own line and the next one, so it can sit
        # on the line above a long statement.
        allowed.setdefault(idx, set()).update(rules)
        allowed.setdefault(idx + 1, set()).update(rules)
    return allowed


def atomic_tags(raw_lines: list[str]) -> dict[int, str]:
    """Map 1-based line number -> slj-atomic role declared ON that line."""
    tags: dict[int, str] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ATOMIC_TAG_RE.search(line)
        if m:
            tags[idx] = m.group(1)
    return tags


def role_for_line(tags: dict[int, str], line: int) -> str | None:
    """A tag covers its own line first, then the line directly below it."""
    if line in tags:
        return tags[line]
    return tags.get(line - 1)


def match_paren(text: str, open_pos: int, open_ch: str = "(", close_ch: str = ")") -> int:
    """Offset just past the matching close bracket, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def find_function_bodies(stripped: str) -> list[tuple[int, int, int]]:
    """Top-level function bodies as (header_start, body_start, body_end).

    Namespace / struct / class / enum / extern blocks are transparent, so
    member functions inside them are still found. body_start/body_end are
    the offsets of the opening and closing braces. Nested lambdas are part
    of their enclosing body, not separate entries.
    """
    bodies = []
    transparent_kw = re.compile(r"\b(namespace|struct|class|union|enum|extern)\b")
    i, n = 0, len(stripped)
    stack = []  # per open brace: True if a function body we recorded
    while i < n:
        c = stripped[i]
        if c == "{":
            inside_fn = any(stack)
            if inside_fn:
                stack.append(False)
                i += 1
                continue
            # Header: backtrack to the previous ';', '{', or '}'.
            h = i - 1
            while h >= 0 and stripped[h] not in ";{}":
                h -= 1
            header = stripped[h + 1 : i]
            is_fn = "(" in header and not transparent_kw.search(header)
            # An initializer list (`= {` / `return {`) is not a body.
            if re.search(r"[=,]\s*$|\breturn\s*$", header):
                is_fn = False
            if is_fn:
                end = match_paren(stripped, i, "{", "}")
                if end < 0:
                    break
                bodies.append((h + 1, i, end - 1))
            stack.append(is_fn)
        elif c == "}":
            if stack:
                stack.pop()
        i += 1
    return bodies


def strip_throw_statements(body: str) -> str:
    """Blank every `throw ...;` statement (cold error paths are exempt)."""
    out = list(body)
    for m in re.finditer(r"\bthrow\b", body):
        i = m.start()
        depth = 0
        while i < len(body):
            ch = body[i]
            if ch in "([":
                depth += 1
            elif ch in ")]":
                depth -= 1
            elif ch == ";" and depth <= 0:
                break
            if ch != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


def chain_root(chain: str) -> str:
    return re.split(r"\s*(?:\.|->)\s*", chain.strip())[0]


def hot_path_bodies(stripped: str) -> list[tuple[str, int, str]]:
    """(params, body_offset, body_text) for each SLJ_HOT_PATH *definition*.

    body_offset is the offset of the opening brace in `stripped`;
    declarations without a body are skipped (checked in their defining TU).
    """
    out: list[tuple[str, int, str]] = []
    for m in re.finditer(rf"\b{HOT_PATH_MARKER}\b", stripped):
        sig_start = m.end()
        open_paren = stripped.find("(", sig_start)
        if open_paren < 0:
            continue
        after_params = match_paren(stripped, open_paren)
        if after_params < 0:
            continue
        # Skip trailing qualifiers (const, noexcept, override...) to the
        # body or the declaration's terminating ';'.
        j = after_params
        while j < len(stripped) and stripped[j] not in "{;":
            j += 1
        if j >= len(stripped) or stripped[j] == ";":
            continue
        body_end = match_paren(stripped, j, "{", "}")
        if body_end < 0:
            continue
        out.append((stripped[open_paren + 1 : after_params - 1], j, stripped[j:body_end]))
    return out


def check_hot_path_lexical(path: Path, raw: str, stripped: str) -> list[Finding]:
    findings: list[Finding] = []
    for params, j, body in hot_path_bodies(stripped):
        roots = {name for name in REF_PARAM_RE.findall(params)}
        roots.add("this")
        body_line0 = line_of(stripped, j)
        roots.update(REF_ALIAS_RE.findall(body))
        scannable = strip_throw_statements(body)

        for bm in BANNED_ALLOC_RE.finditer(scannable):
            ln = body_line0 + scannable.count("\n", 0, bm.start())
            tok = bm.group(0).strip().rstrip("(").strip()
            findings.append(
                Finding(path, ln, "hot-path-alloc", f"allocation `{tok}` in {HOT_PATH_MARKER} function")
            )
        for gm in GROWTH_CALL_RE.finditer(scannable):
            root = chain_root(gm.group("chain"))
            if root in roots:
                continue
            ln = body_line0 + scannable.count("\n", 0, gm.start())
            findings.append(
                Finding(
                    path, ln, "hot-path-alloc",
                    f"growth call `{gm.group('chain')}.{gm.group('method')}()` on "
                    f"`{root}`, which is not a reference parameter or local reference "
                    f"alias of this {HOT_PATH_MARKER} function",
                )
            )
        for cm in CONTAINER_LOCAL_RE.finditer(scannable):
            ln = body_line0 + scannable.count("\n", 0, cm.start("name"))
            findings.append(
                Finding(
                    path, ln, "hot-path-alloc",
                    f"by-value owning container local `{cm.group('name')}` in "
                    f"{HOT_PATH_MARKER} function (recycle a workspace buffer instead)",
                )
            )
    return findings


def check_unchecked_read(path: Path, rel: str, raw: str, stripped: str) -> list[Finding]:
    if rel not in DESERIALIZER_FILES:
        return []
    findings: list[Finding] = []
    for _, body_start, body_end in find_function_bodies(stripped):
        body = stripped[body_start:body_end]
        sized_from_variable = []
        for sm in SIZING_CALL_RE.finditer(body):
            arg_open = body.find("(", sm.end() - 1)
            arg_close = match_paren(body, arg_open)
            if arg_close < 0:
                continue
            arg = body[arg_open + 1 : arg_close - 1]
            if re.search(r"[A-Za-z_]", arg):
                sized_from_variable.append((sm, arg.strip()))
        if not sized_from_variable:
            continue
        if any(tok in body for tok in GUARD_TOKENS):
            continue
        for sm, arg in sized_from_variable:
            ln = line_of(stripped, body_start + sm.start())
            findings.append(
                Finding(
                    path, ln, "unchecked-read",
                    f"container sized from `{arg}` with no length guard "
                    f"(kMax* cap, need()/fail()/check_*, or throw) in the same function",
                )
            )
    return findings


def check_naked_mutex(path: Path, rel: str, raw: str, stripped: str) -> list[Finding]:
    if rel == "src/core/annotations.hpp":
        return []
    findings = []
    for m in NAKED_MUTEX_RE.finditer(stripped):
        ln = line_of(stripped, m.start())
        findings.append(
            Finding(
                path, ln, "naked-mutex",
                f"naked std::{m.group(1)}; use slj::Mutex / slj::LockGuard / "
                f"slj::CondVar from core/annotations.hpp so thread-safety "
                f"analysis sees the acquisition",
            )
        )
    return findings


def check_simd_dispatch(path: Path, rel: str, raw: str, stripped: str) -> list[Finding]:
    findings: list[Finding] = []
    # Backend selection happens exactly once: feature macros stay inside
    # core/simd.hpp; every other file dispatches through the Active tag.
    if rel != "src/core/simd.hpp":
        for m in SIMD_MACRO_RE.finditer(stripped):
            ln = line_of(stripped, m.start())
            findings.append(
                Finding(
                    path, ln, "simd-dispatch",
                    f"SIMD feature macro `{m.group(0)}` outside core/simd.hpp; "
                    f"template on a backend tag and dispatch through "
                    f"slj::simd::Active instead",
                )
            )
    # A hot kernel is one preprocessor-free code path: per-ISA #ifdef
    # ladders silently rot on whichever backend CI does not build.
    if HOT_PATH_MARKER in stripped:
        for _, j, body in hot_path_bodies(stripped):
            body_line0 = line_of(stripped, j)
            for pm in PP_COND_RE.finditer(body):
                ln = body_line0 + body.count("\n", 0, pm.start())
                findings.append(
                    Finding(
                        path, ln, "simd-dispatch",
                        f"preprocessor conditional inside a {HOT_PATH_MARKER} body; "
                        f"hot kernels must be one code path (move the choice to "
                        f"core/simd.hpp or a template parameter)",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# layering: quoted includes validated against the module DAG.
# ---------------------------------------------------------------------------


class LayerMap:
    """Module DAG from layers.toml: file -> module, module -> allowed deps."""

    def __init__(self, by_path: dict[str, str], by_dir: dict[str, str],
                 deps: dict[str, frozenset[str]]):
        self.by_path = by_path
        self.by_dir = by_dir
        self.deps = deps

    @classmethod
    def load(cls, path: Path) -> "LayerMap":
        if tomllib is None:
            print("slj_lint: layering needs Python >= 3.11 (tomllib)", file=sys.stderr)
            sys.exit(2)
        try:
            data = tomllib.loads(path.read_text())
        except (OSError, tomllib.TOMLDecodeError) as e:
            print(f"slj_lint: cannot load layers file {path}: {e}", file=sys.stderr)
            sys.exit(2)
        by_path: dict[str, str] = {}
        by_dir: dict[str, str] = {}
        deps: dict[str, frozenset[str]] = {}
        modules = data.get("modules", {})
        for name, spec in modules.items():
            deps[name] = frozenset(spec.get("deps", []))
            for p in spec.get("paths", []):
                by_path[p] = name
            if "dir" in spec:
                by_dir[spec["dir"]] = name
        for name, dd in deps.items():
            unknown = dd - set(deps)
            if unknown:
                print(f"slj_lint: layers.toml module `{name}` depends on "
                      f"unknown module(s): {', '.join(sorted(unknown))}", file=sys.stderr)
                sys.exit(2)
        return cls(by_path, by_dir, deps)

    def module_of(self, src_rel: str) -> str | None:
        """Module for a path relative to src/ ("ingest/frame_queue.hpp")."""
        if src_rel in self.by_path:
            return self.by_path[src_rel]
        top = src_rel.split("/", 1)[0]
        return self.by_dir.get(top)


def check_layering(path: Path, rel: str, raw: str, layers: LayerMap | None) -> list[Finding]:
    if layers is None or not rel.startswith("src/"):
        return []
    src_rel = rel[len("src/"):]
    module = layers.module_of(src_rel)
    findings: list[Finding] = []
    if module is None:
        findings.append(
            Finding(path, 1, "layering",
                    f"`{src_rel}` belongs to no module in scripts/lint/layers.toml; "
                    f"add the new directory to the DAG before using it")
        )
        return findings
    allowed = layers.deps[module] | {module}
    # Includes are string literals, so this scan works on comment-stripped
    # raw text rather than the fully stripped buffer.
    scannable = strip_comments_only(raw)
    for m in QUOTED_INCLUDE_RE.finditer(scannable):
        inc = m.group(1)
        ln = line_of(scannable, m.start())
        if ".." in inc.split("/") or not CANONICAL_INCLUDE_RE.match(inc):
            findings.append(
                Finding(path, ln, "layering",
                        f'include "{inc}" is not in canonical "module/header.hpp" '
                        f"form (repo-relative, no \"..\")")
            )
            continue
        target = layers.module_of(inc)
        if target is None:
            findings.append(
                Finding(path, ln, "layering",
                        f'include "{inc}" resolves to no module in '
                        f"scripts/lint/layers.toml")
            )
            continue
        if target not in allowed:
            direction = "upward/sideways"
            findings.append(
                Finding(path, ln, "layering",
                        f"{direction} dependency: module `{module}` may not include "
                        f"`{target}` (`{inc}`); allowed deps: "
                        f"{', '.join(sorted(layers.deps[module])) or '(none)'} — "
                        f"a new edge needs an explicit layers.toml change")
            )
    return findings


# ---------------------------------------------------------------------------
# atomics-discipline: tag taxonomy + RMW/control-flow + hot-path seq_cst.
# ---------------------------------------------------------------------------


def atomic_decl_names(stripped: str) -> set[str]:
    """Names declared with a std::atomic<...> type in this text."""
    names: set[str] = set()
    for m in re.finditer(r"\batomic\b", stripped):
        after = stripped[m.end():]
        ws = re.match(r"\s*", after).end()
        if ws >= len(after) or after[ws] != "<":
            continue
        close = match_paren(after, ws, "<", ">")
        if close < 0:
            continue
        nm = re.match(r"\s*([A-Za-z_]\w*)\s*[;{=]", after[close:])
        if nm:
            names.add(nm.group(1))
    return names


def statement_around(text: str, pos: int) -> str:
    """The statement containing pos: from the previous ';'/'{'/'}' up to pos.

    Only the prefix matters — the checks look for control keywords that
    precede the match inside its own statement.
    """
    start = pos
    while start > 0 and text[start - 1] not in ";{}":
        start -= 1
    return text[start:pos]


def check_atomics(path: Path, rel: str, raw: str, stripped: str,
                  raw_lines: list[str]) -> list[Finding]:
    if "memory_order_relaxed" not in stripped and not (
        HOT_PATH_MARKER in stripped and ATOMIC_MEMBER_RE.search(stripped)
    ):
        return []
    findings: list[Finding] = []
    tags = atomic_tags(raw_lines)

    # 1. Taxonomy: every relaxed site carries a valid role tag.
    for m in RELAXED_RE.finditer(stripped):
        ln = line_of(stripped, m.start())
        role = role_for_line(tags, ln)
        if role is None:
            findings.append(
                Finding(path, ln, "atomics-discipline",
                        "untagged memory_order_relaxed site; add "
                        "`// slj-atomic: <counter|snapshot|flag|seqlock>` on this "
                        "line or the line above (taxonomy: scripts/lint/README.md)")
            )
        elif role not in ATOMIC_ROLES:
            findings.append(
                Finding(path, ln, "atomics-discipline",
                        f"unknown slj-atomic role `{role}`; expected one of "
                        f"{', '.join(ATOMIC_ROLES)}")
            )

    # 2. Relaxed RMW feeding control flow: the classic acq_rel hazard
    #    (`if (refs.fetch_sub(1, relaxed) == 1) reclaim();`). Sanctioned only
    #    for roles that are monotonic by construction.
    for m in RMW_CALL_RE.finditer(stripped):
        args_open = stripped.find("(", m.end() - 1)
        args_close = match_paren(stripped, args_open)
        if args_close < 0:
            continue
        call_text = stripped[m.start():args_close]
        if "memory_order_relaxed" not in call_text:
            continue
        prefix = statement_around(stripped, m.start())
        if not CONTROL_KEYWORD_RE.search(prefix):
            continue
        ln = line_of(stripped, m.start())
        role = role_for_line(tags, ln)
        if role in RMW_CONTROL_OK_ROLES:
            continue
        findings.append(
            Finding(path, ln, "atomics-discipline",
                    f"relaxed read-modify-write `{m.group('method')}` feeds control "
                    f"flow; relaxed RMW results must not gate branches unless the "
                    f"site is tagged counter/snapshot/seqlock (a reclaim-style "
                    f"branch needs acq_rel)")
        )

    # 3. Hot path: a defaulted memory order is an implicit seq_cst fence.
    #    `.load`/`.store` also exist on the SIMD vector types, so those two
    #    only count when the receiver is a name declared std::atomic in this
    #    file or its sibling header; the fetch_*/exchange/CAS family is
    #    unambiguous.
    known_atomics: set[str] | None = None
    for _, j, body in hot_path_bodies(stripped):
        body_line0 = line_of(stripped, j)
        for am in ATOMIC_MEMBER_RE.finditer(body):
            if am.group("method") not in ATOMIC_ONLY_METHODS:
                if known_atomics is None:
                    known_atomics = atomic_decl_names(stripped)
                    if path.suffix == ".cpp":
                        for ext in (".hpp", ".h"):
                            sib = path.with_suffix(ext)
                            if sib.is_file():
                                known_atomics |= atomic_decl_names(
                                    strip_comments_and_strings(
                                        sib.read_text(errors="replace")))
                receiver = re.split(r"\s*(?:\.|->)\s*", am.group("chain"))[-1]
                if receiver not in known_atomics:
                    continue
            args_open = body.find("(", am.end() - 1)
            args_close = match_paren(body, args_open)
            if args_close < 0:
                continue
            args = body[args_open + 1 : args_close - 1]
            if "memory_order" in args:
                continue
            ln = body_line0 + body.count("\n", 0, am.start())
            findings.append(
                Finding(path, ln, "atomics-discipline",
                        f"atomic `{am.group('method')}` with defaulted (seq_cst) "
                        f"memory order inside a {HOT_PATH_MARKER} body; spell the "
                        f"order explicitly — the hot path never pays an implicit "
                        f"full fence")
            )
    return findings


# ---------------------------------------------------------------------------
# determinism: no unordered iteration, no float in hot kernels, no wall-clock
# or libc randomness outside synth/.
# ---------------------------------------------------------------------------


def unordered_locals(stripped: str) -> set[str]:
    """Names declared with an unordered container type anywhere in the file."""
    names: set[str] = set()
    for m in UNORDERED_TYPE_RE.finditer(stripped):
        after = stripped[m.end():]
        # Skip template arguments if present, then take the declared name.
        offset = 0
        ws = re.match(r"\s*", after)
        offset += ws.end()
        if offset < len(after) and after[offset] == "<":
            close = match_paren(after, offset, "<", ">")
            if close < 0:
                continue
            offset = close
        # Terminators cover locals/members (;={) and function parameters (,)).
        nm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(),]", after[offset:])
        if nm:
            names.add(nm.group(1))
    return names


def check_determinism(path: Path, rel: str, raw: str, stripped: str) -> list[Finding]:
    findings: list[Finding] = []

    # 1. Range-for over an unordered container: hash-seed iteration order
    #    leaks straight into whatever the loop builds. Copy into a vector and
    #    sort (see skeleton_graph.cpp `specials`) instead.
    if "unordered_" in stripped:
        unordered = unordered_locals(stripped)
        for m in RANGE_FOR_RE.finditer(stripped):
            range_expr = m.group("range").strip()
            root = re.match(r"(?:const\s+)?(?:auto\s*&?&?\s*)?([A-Za-z_]\w*)", range_expr)
            flagged = False
            if root and root.group(1) in unordered:
                flagged = True
            if UNORDERED_TYPE_RE.search(range_expr):
                flagged = True
            if flagged:
                ln = line_of(stripped, m.start())
                findings.append(
                    Finding(path, ln, "determinism",
                            f"range-for over unordered container `{range_expr}`: "
                            f"hash-seed iteration order is nondeterministic; copy "
                            f"into a vector and sort before iterating")
                )

    # 2. Single-precision floats in hot kernels: the bit-identity contract
    #    allows integer lanes and the exact integer-sum double SAT idiom only.
    for _, j, body in hot_path_bodies(stripped):
        body_line0 = line_of(stripped, j)
        for fm in FLOAT_TOKEN_RE.finditer(body):
            ln = body_line0 + body.count("\n", 0, fm.start())
            findings.append(
                Finding(path, ln, "determinism",
                        f"`float` inside a {HOT_PATH_MARKER} kernel; the "
                        f"integer-domain bit-identity contract allows integer "
                        f"lanes or exact integer-sum `double` accumulation only")
            )

    # 3. Wall clocks and libc randomness: only synth/ may generate entropy;
    #    everything else takes an injected clock or a seeded stream.
    if not rel.startswith("src/synth/"):
        for m in NONDET_SOURCE_RE.finditer(stripped):
            what = m.group("what") or m.group("time") or m.group("rd")
            ln = line_of(stripped, m.start())
            findings.append(
                Finding(path, ln, "determinism",
                        f"nondeterminism source `{what}` outside src/synth/; "
                        f"inject a clock / use a seeded generator so replay "
                        f"stays bit-identical")
            )
    return findings


# ---------------------------------------------------------------------------
# AST engine: structural overlay per translation unit (clang required).
#
# The lexical checks above always run; the AST adds what tokens cannot see —
# macro-hidden allocations, operator++ on atomics, unordered types behind
# aliases — and findings are deduped by (file, line, rule).
# ---------------------------------------------------------------------------

AST_ALLOC_CALLEES = ("malloc", "calloc", "realloc", "aligned_alloc", "strdup",
                     "make_unique", "make_shared", "to_string")
AST_ATOMIC_METHODS = ("load", "store", "exchange", "fetch_add", "fetch_sub",
                      "fetch_and", "fetch_or", "fetch_xor",
                      "compare_exchange_weak", "compare_exchange_strong")
AST_NONDET_CALLEES = ("rand", "srand", "time")

# Structural rules can only fire on files showing one of these tokens, so
# TUs without them skip the (expensive) AST dump entirely.
AST_SURFACE_RE = re.compile(
    r"SLJ_HOT_PATH|atomic|unordered_|fetch_|\brandom_device\b"
)


class AstWalker:
    """Walks a clang JSON AST keeping the sticky file/line position state.

    clang omits `file`/`line` on a location when unchanged from the
    previously printed one, so position is threaded through the document-
    order traversal.
    """

    def __init__(self, tu_file: str):
        self.tu_file = tu_file
        self.cur_file = ""
        self.cur_line = 0

    def update_pos(self, node: dict) -> None:
        for key in ("loc", "range"):
            loc = node.get(key)
            if not isinstance(loc, dict):
                continue
            if key == "range":
                loc = loc.get("begin", {})
            if "expansionLoc" in loc:
                loc = loc["expansionLoc"]
            if "file" in loc:
                self.cur_file = loc["file"]
            if "line" in loc:
                self.cur_line = int(loc["line"])
            break

    def in_main_file(self) -> bool:
        # Position starts unset; clang sets `file` on the first main-file loc
        # and on every file switch, so empty means "main file so far".
        return not self.cur_file or os.path.basename(self.cur_file) == os.path.basename(self.tu_file)


def _is_hot_function(node: dict) -> bool:
    if node.get("kind") not in ("FunctionDecl", "CXXMethodDecl"):
        return False
    for child in node.get("inner", []) or []:
        if isinstance(child, dict) and child.get("kind") == "AnnotateAttr":
            if "slj_hot_path" in json.dumps(child):
                return True
    return False


def _ast_scan(node, walker: AstWalker, hot_depth: int, tu_path: Path,
              rel: str, rules: set[str], out: list[Finding]) -> None:
    if isinstance(node, list):
        for child in node:
            _ast_scan(child, walker, hot_depth, tu_path, rel, rules, out)
        return
    if not isinstance(node, dict):
        return
    walker.update_pos(node)
    kind = node.get("kind", "")
    in_main = walker.in_main_file()
    line = walker.cur_line
    entered_hot = _is_hot_function(node)
    if entered_hot:
        hot_depth += 1

    if in_main and hot_depth > 0 and "hot-path-alloc" in rules:
        if kind == "CXXNewExpr":
            out.append(Finding(tu_path, line, "hot-path-alloc",
                               f"new expression in {HOT_PATH_MARKER} function (AST)"))
        elif kind in ("CallExpr", "CXXConstructExpr"):
            blob = json.dumps(node.get("inner", [])[:2])
            for fn in AST_ALLOC_CALLEES:
                if f'"{fn}"' in blob:
                    out.append(Finding(tu_path, line, "hot-path-alloc",
                                       f"call to {fn} in {HOT_PATH_MARKER} function (AST)"))
                    break

    if in_main and hot_depth > 0 and "atomics-discipline" in rules:
        # operator++/--/+= on a std::atomic go through the defaulted seq_cst
        # overloads — invisible to the lexical member-call scan.
        if kind in ("UnaryOperator", "CompoundAssignOperator", "CXXOperatorCallExpr"):
            qual = json.dumps(node.get("type", {})) + json.dumps(
                [c.get("type", {}) for c in node.get("inner", []) or [] if isinstance(c, dict)]
            )
            if "atomic<" in qual:
                out.append(Finding(
                    tu_path, line, "atomics-discipline",
                    "operator form on std::atomic inside a SLJ_HOT_PATH body uses "
                    "the defaulted (seq_cst) order; call the member op with an "
                    "explicit memory order (AST)"))

    if in_main and "determinism" in rules:
        if kind == "CXXForRangeStmt":
            # The synthesized __range variable carries the deduced type, which
            # exposes unordered containers hidden behind `auto` or aliases.
            blob = json.dumps(node.get("inner", [])[:3])
            if "unordered_" in blob:
                out.append(Finding(
                    tu_path, line, "determinism",
                    "range-for over an unordered container (deduced type); copy "
                    "into a vector and sort before iterating (AST)"))
        elif kind == "CallExpr" and not rel.startswith("src/synth/"):
            blob = json.dumps(node.get("inner", [])[:1])
            for fn in AST_NONDET_CALLEES:
                if f'"{fn}"' in blob:
                    out.append(Finding(
                        tu_path, line, "determinism",
                        f"nondeterminism source `{fn}` outside src/synth/ (AST)"))
                    break
        elif kind == "CXXConstructExpr" and not rel.startswith("src/synth/"):
            if "random_device" in json.dumps(node.get("type", {})):
                out.append(Finding(
                    tu_path, line, "determinism",
                    "nondeterminism source `random_device` outside src/synth/ (AST)"))

    for child in node.get("inner", []) or []:
        _ast_scan(child, walker, hot_depth, tu_path, rel, rules, out)


def load_compdb(compdb_path: Path) -> dict[str, dict]:
    """Map absolute source path -> compile-db entry."""
    try:
        entries = json.loads(compdb_path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    by_path: dict[str, dict] = {}
    for entry in entries:
        f = entry.get("file", "")
        p = f if os.path.isabs(f) else os.path.join(entry.get("directory", "."), f)
        by_path[os.path.normpath(p)] = entry
    return by_path


def ast_dump(clang: str, path: Path, root: Path, entry: dict | None) -> dict | None:
    """JSON AST for one TU, or None when the dump fails."""
    if entry is not None:
        args = entry.get("arguments") or shlex.split(entry.get("command", ""))
        keep = [a for a in args[1:] if a.startswith(("-I", "-D", "-std", "-isystem"))]
        cwd = entry.get("directory", str(root))
    else:
        keep = ["-std=c++20", f"-I{root / 'src'}"]
        cwd = str(root)
    cmd = [clang, "-fsyntax-only", "-Xclang", "-ast-dump=json", *keep, str(path)]
    try:
        proc = subprocess.run(cmd, cwd=cwd, capture_output=True, text=True, timeout=300)
        if proc.returncode != 0 and not proc.stdout:
            return None
        return json.loads(proc.stdout)
    except (subprocess.SubprocessError, json.JSONDecodeError, OSError):
        return None


def check_ast(clang: str, path: Path, rel: str, root: Path, rules: set[str],
              entry: dict | None) -> list[Finding] | None:
    """Structural findings for one TU, or None if the AST dump failed."""
    ast = ast_dump(clang, path, root, entry)
    if ast is None:
        return None
    out: list[Finding] = []
    walker = AstWalker(str(path))
    _ast_scan(ast, walker, 0, path, rel, rules, out)
    return out


# ---------------------------------------------------------------------------
# Suppression ratchet.
# ---------------------------------------------------------------------------


def count_suppressions(targets: list[Path]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for path in targets:
        try:
            text = path.read_text(errors="replace")
        except OSError:
            continue
        for m in SUPPRESS_RE.finditer(text):
            for rule in (r.strip() for r in m.group(1).split(",")):
                counts[rule] = counts.get(rule, 0) + 1
    return counts


def load_suppression_baseline(path: Path) -> dict[str, int]:
    baseline: dict[str, int] = {"total": 0}
    try:
        text = path.read_text()
    except OSError as e:
        print(f"slj_lint: cannot read suppression baseline {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2 or not parts[1].isdigit():
            print(f"slj_lint: malformed baseline line: `{line}`", file=sys.stderr)
            sys.exit(2)
        baseline[parts[0]] = int(parts[1])
    return baseline


def render_suppression_baseline(counts: dict[str, int]) -> str:
    lines = [
        "# slj_lint suppression baseline — the ratchet only goes down.",
        "# scripts/ci.sh --analyze fails when the number of `// slj-lint: allow(...)`",
        "# sites in src/ exceeds these counts; shrinking them is always welcome.",
        "# Regenerate (after review!) with:",
        "#   python3 scripts/lint/slj_lint.py --root . \\",
        "#     --write-suppression-baseline scripts/lint/suppressions_baseline.txt",
        f"total {sum(counts.values())}",
    ]
    for rule in sorted(counts):
        lines.append(f"{rule} {counts[rule]}")
    return "\n".join(lines) + "\n"


def check_suppression_ratchet(targets: list[Path], baseline_path: Path) -> list[str]:
    baseline = load_suppression_baseline(baseline_path)
    counts = count_suppressions(targets)
    errors: list[str] = []
    total = sum(counts.values())
    if total > baseline.get("total", 0):
        errors.append(
            f"suppression count grew: {total} `slj-lint: allow` site(s) vs "
            f"baseline {baseline.get('total', 0)} — remove the new suppression "
            f"or update {baseline_path} in the same commit (reviewed)")
    for rule, n in sorted(counts.items()):
        if n > baseline.get(rule, 0):
            errors.append(
                f"suppressions for rule `{rule}` grew: {n} vs baseline "
                f"{baseline.get(rule, 0)}")
    return errors


# ---------------------------------------------------------------------------


def lint_file(path: Path, root: Path, rules: set[str], layers: LayerMap | None) -> list[Finding]:
    """The lexical floor: every rule, token-level, runs on any host."""
    try:
        raw = path.read_text(errors="replace")
    except OSError as e:
        print(f"slj_lint: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    try:
        rel = str(path.resolve().relative_to(root.resolve())).replace(os.sep, "/")
    except ValueError:
        rel = str(path)
    stripped = strip_comments_and_strings(raw)
    raw_lines = raw.split("\n")
    allowed = suppressions(raw_lines)
    findings: list[Finding] = []
    if "hot-path-alloc" in rules and HOT_PATH_MARKER in stripped:
        findings += check_hot_path_lexical(path, raw, stripped)
    if "unchecked-read" in rules:
        findings += check_unchecked_read(path, rel, raw, stripped)
    if "naked-mutex" in rules:
        findings += check_naked_mutex(path, rel, raw, stripped)
    if "simd-dispatch" in rules:
        findings += check_simd_dispatch(path, rel, raw, stripped)
    if "layering" in rules:
        findings += check_layering(path, rel, raw, layers)
    if "atomics-discipline" in rules:
        findings += check_atomics(path, rel, raw, stripped, raw_lines)
    if "determinism" in rules:
        findings += check_determinism(path, rel, raw, stripped)
    return [
        f for f in findings
        if f.rule not in allowed.get(f.line, ()) and "all" not in allowed.get(f.line, ())
    ]


def filter_suppressed(findings: list[Finding], path: Path) -> list[Finding]:
    """Apply `slj-lint: allow` suppressions to AST findings too."""
    try:
        raw_lines = path.read_text(errors="replace").split("\n")
    except OSError:
        return findings
    allowed = suppressions(raw_lines)
    return [
        f for f in findings
        if f.rule not in allowed.get(f.line, ()) and "all" not in allowed.get(f.line, ())
    ]


def default_targets(root: Path) -> list[Path]:
    src = root / "src"
    if not src.is_dir():
        print(f"slj_lint: no src/ under {root}", file=sys.stderr)
        sys.exit(2)
    return sorted(p for p in src.rglob("*") if p.suffix in (".hpp", ".cpp", ".h", ".cc"))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*", type=Path, help="files to lint (default: src/ under --root)")
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels above this script)")
    ap.add_argument("--rules", default=",".join(RULES),
                    help=f"comma-separated rules to run (default: all of {', '.join(RULES)})")
    ap.add_argument("--engine", choices=("ast", "lexical"), default="ast",
                    help="ast (default): lexical floor + clang structural overlay "
                         "per TU, falling back loudly per file; lexical: floor only")
    ap.add_argument("--strict-engine", action="store_true",
                    help="exit 2 if any translation unit fell back from the AST "
                         "engine to lexical (what CI uses on clang hosts)")
    ap.add_argument("--compdb", type=Path, default=None,
                    help="compile_commands.json for the AST engine "
                         "(default: <root>/build/compile_commands.json)")
    ap.add_argument("--layers", type=Path, default=None,
                    help="module DAG for the layering rule "
                         "(default: <root>/scripts/lint/layers.toml)")
    ap.add_argument("--suppression-baseline", type=Path, default=None,
                    help="fail if `slj-lint: allow` counts in the targets exceed "
                         "this baseline file (the ratchet)")
    ap.add_argument("--write-suppression-baseline", type=Path, default=None,
                    help="write the current suppression counts to FILE and exit")
    ap.add_argument("-q", "--quiet", action="store_true", help="suppress the summary line")
    args = ap.parse_args()

    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(RULES)
    if unknown:
        print(f"slj_lint: unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    targets = [p for p in args.files] or default_targets(args.root)

    if args.write_suppression_baseline is not None:
        counts = count_suppressions(targets)
        args.write_suppression_baseline.write_text(render_suppression_baseline(counts))
        print(f"slj_lint: wrote suppression baseline "
              f"({sum(counts.values())} site(s)) to {args.write_suppression_baseline}",
              file=sys.stderr)
        return 0

    layers: LayerMap | None = None
    if "layering" in rules:
        layers_path = args.layers or (args.root / "scripts" / "lint" / "layers.toml")
        if layers_path.is_file():
            layers = LayerMap.load(layers_path)
        else:
            print(f"slj_lint: layers file {layers_path} not found; "
                  f"skipping the layering rule", file=sys.stderr)

    report = EngineReport()
    clang = None
    compdb: dict[str, dict] = {}
    if args.engine == "ast":
        clang = shutil.which("clang++") or shutil.which("clang")
        compdb_path = args.compdb or (args.root / "build" / "compile_commands.json")
        if compdb_path.is_file():
            compdb = load_compdb(compdb_path)

    findings: list[Finding] = []
    for path in targets:
        try:
            rel = str(path.resolve().relative_to(args.root.resolve())).replace(os.sep, "/")
        except ValueError:
            rel = str(path)
        file_findings = lint_file(path, args.root, rules, layers)
        if args.engine == "lexical":
            report.note(rel, "lexical")
        elif path.suffix not in (".cpp", ".cc"):
            # Headers have no compile entry; their lexical pass is the full
            # check by construction, not a degradation.
            report.note(rel, "lexical (header)")
        else:
            try:
                text = path.read_text(errors="replace")
            except OSError:
                text = ""
            if not AST_SURFACE_RE.search(text):
                # No token the structural rules key on: the AST overlay cannot
                # add findings, so the (expensive) dump is skipped soundly.
                report.note(rel, "ast (no structural surface)")
            elif clang is None:
                report.note_fallback(rel, "clang++ not on PATH")
            else:
                entry = compdb.get(os.path.normpath(str(path.resolve())))
                ast_findings = check_ast(clang, path, rel, args.root, rules, entry)
                if ast_findings is None:
                    report.note_fallback(rel, "clang++ -ast-dump=json failed")
                    print(f"slj_lint: AST dump failed for {rel}; "
                          f"this file was checked lexically only", file=sys.stderr)
                else:
                    report.note(rel, "ast")
                    seen = {f.key() for f in file_findings}
                    extra = [f for f in filter_suppressed(ast_findings, path)
                             if f.key() not in seen]
                    file_findings += extra
        findings += file_findings

    ratchet_errors: list[str] = []
    if args.suppression_baseline is not None:
        ratchet_errors = check_suppression_ratchet(targets, args.suppression_baseline)

    findings.sort(key=lambda f: (str(f.path), f.line))
    for f in findings:
        print(f.render(args.root))
    for err in ratchet_errors:
        print(f"slj_lint: [suppression-ratchet] {err}")

    clang_less = args.engine == "ast" and clang is None and any(
        eng == "lexical (fallback)" for eng in report.per_file.values()
    )
    if clang_less:
        n = sum(1 for e in report.per_file.values() if e == "lexical (fallback)")
        print(f"slj_lint: AST engine unavailable (clang++ not on PATH); "
              f"{n} translation unit(s) fell back to lexical-only checks",
              file=sys.stderr)
    if not args.quiet:
        print(f"slj_lint: {len(findings)} finding(s) across {len(targets)} file(s) "
              f"[rules: {', '.join(sorted(rules))}; engine: {args.engine} "
              f"({report.summary()})]",
              file=sys.stderr)

    if args.strict_engine and report.fallbacks:
        for rel, reason in report.fallbacks:
            print(f"slj_lint: --strict-engine: {rel} fell back to lexical "
                  f"({reason})", file=sys.stderr)
        return 2
    return 1 if findings or ratchet_errors else 0


if __name__ == "__main__":
    sys.exit(main())
