#!/usr/bin/env python3
"""slj_lint: repo-specific invariant linter for the slj codebase.

Enforces four invariants the compiler cannot see:

  hot-path-alloc   Functions marked SLJ_HOT_PATH (the steady-state per-frame
                   kernels: *_into, tick_into, process_into) must not allocate.
                   Banned outright: new expressions, the malloc family,
                   make_unique/make_shared, std::to_string, and by-value
                   locals of owning container types. Growth calls
                   (push_back/emplace_back/resize/resize_discard/assign/
                   reserve/insert/append) are allowed only when the receiver
                   is rooted in a reference parameter or a local reference
                   alias — the sanctioned recycled-workspace idiom
                   (`auto& cand = ws.thin_candidates_first;`). `throw`
                   statements are exempt: they are the cold error path.

  unchecked-read   Deserializer functions (image_io.cpp, clip_io.cpp,
                   trace_format.cpp) that size containers from decoded
                   values must carry a guard in the same function body:
                   a kMax* cap, need()/fail()/check_* calls, or a throw.
                   Attacker-controlled lengths must never reach resize()
                   unchecked.

  naked-mutex      std::mutex / std::lock_guard / std::unique_lock /
                   std::scoped_lock / std::condition_variable are banned in
                   src/ outside core/annotations.hpp. All locking goes
                   through slj::Mutex / slj::LockGuard / slj::CondVar so
                   Clang thread-safety analysis sees every acquisition.

  simd-dispatch    SIMD feature macros (__SSE*, __AVX*, __ARM_NEON*,
                   SLJ_SIMD_*) are banned in src/ outside core/simd.hpp —
                   backend selection happens exactly once, in the Active
                   alias; kernels are templated on the backend tag. Also
                   bans #if / #ifdef / #ifndef inside SLJ_HOT_PATH bodies:
                   a hot kernel must be one preprocessor-free code path,
                   not an #ifdef ladder that rots on untested backends.

Engines:
  lexical (default)  Pure Python, token-level; runs anywhere.
  ast (experimental) Drives `clang++ -ast-dump=json` through
                     compile_commands.json for the hot-path-alloc rule
                     (new-expressions and owning-container constructions are
                     found structurally); the other rules stay lexical.
                     Requires clang; exits 2 when it is missing.

Suppression: append `// slj-lint: allow(<rule>)` to the offending line or
the line above it. Use sparingly; every suppression is grep-able.

Exit status: 0 clean, 1 findings, 2 usage or environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

RULES = ("hot-path-alloc", "unchecked-read", "naked-mutex", "simd-dispatch")

HOT_PATH_MARKER = "SLJ_HOT_PATH"

# Deserializer files subject to the unchecked-read rule (repo-relative).
DESERIALIZER_FILES = {
    "src/imaging/image_io.cpp",
    "src/synth/clip_io.cpp",
    "src/replay/trace_format.cpp",
}

# Tokens that count as a length guard inside a deserializer function body.
GUARD_TOKENS = ("kMax", "need(", "fail(", "check_", "throw")

BANNED_ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()"  # new expressions (placement-new is still new storage upstream)
    r"|\bnew\s*\("
    r"|\b(?:std\s*::\s*)?(?:malloc|calloc|realloc|aligned_alloc|strdup)\s*\("
    r"|\b(?:std\s*::\s*)?make_(?:unique|shared)\b"
    r"|\bstd\s*::\s*to_string\s*\("
)

GROWTH_CALL_RE = re.compile(
    r"(?P<chain>[A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*(?:\.|->)\s*"
    r"(?P<method>push_back|emplace_back|resize|resize_discard|assign|reserve|insert|append)"
    r"\s*\("
)

# By-value local of an owning container type: `std::vector<T> v;` etc.
CONTAINER_LOCAL_RE = re.compile(
    r"^\s*(?:const\s+)?(?:std\s*::\s*)?"
    r"(?:vector|string|wstring|deque|list|map|set|multimap|multiset"
    r"|unordered_map|unordered_set|basic_string|valarray)\s*"
    r"(?:<[^;{}]*>)?\s+(?P<name>[A-Za-z_]\w*)\s*(?:[;={(]|$)",
    re.MULTILINE,
)

NAKED_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable|condition_variable_any)\b"
)

SIZING_CALL_RE = re.compile(r"\.\s*(resize|reserve|assign)\s*\(")

# SIMD feature-test / backend-selection macros; only core/simd.hpp may
# mention them (including in #if conditions).
SIMD_MACRO_RE = re.compile(r"\b(?:__SSE\w*|__AVX\w*|__ARM_NEON\w*|SLJ_SIMD_\w+)\b")

# Preprocessor conditionals (banned inside SLJ_HOT_PATH bodies).
PP_COND_RE = re.compile(r"^[ \t]*#[ \t]*if(?:n?def)?\b", re.MULTILINE)

REF_PARAM_RE = re.compile(r"&\s*(?:__restrict__\s+)?([A-Za-z_]\w*)\s*(?:,|\)|=|$)")
REF_ALIAS_RE = re.compile(
    r"(?:^|[;{}])\s*(?:const\s+)?(?:auto|[A-Za-z_][\w:]*(?:\s*<[^;{}=]*>)?)\s*&\s*"
    r"([A-Za-z_]\w*)\s*="
)

SUPPRESS_RE = re.compile(r"slj-lint:\s*allow\(\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)\s*\)")


@dataclass
class Finding:
    path: Path
    line: int  # 1-based
    rule: str
    message: str

    def render(self, root: Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string literals, and char literals.

    Length and newline positions are preserved so offsets map 1:1 back to
    the original text.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out[i] = out[i + 1] = " "
                    i += 2
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def suppressions(raw_lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line number -> set of rules allowed on that line."""
    allowed: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        # A suppression covers its own line and the next one, so it can sit
        # on the line above a long statement.
        allowed.setdefault(idx, set()).update(rules)
        allowed.setdefault(idx + 1, set()).update(rules)
    return allowed


def match_paren(text: str, open_pos: int, open_ch: str = "(", close_ch: str = ")") -> int:
    """Offset just past the matching close bracket, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def find_function_bodies(stripped: str) -> list[tuple[int, int, int]]:
    """Top-level function bodies as (header_start, body_start, body_end).

    Namespace / struct / class / enum / extern blocks are transparent, so
    member functions inside them are still found. body_start/body_end are
    the offsets of the opening and closing braces. Nested lambdas are part
    of their enclosing body, not separate entries.
    """
    bodies = []
    transparent_kw = re.compile(r"\b(namespace|struct|class|union|enum|extern)\b")
    i, n = 0, len(stripped)
    stack = []  # per open brace: True if a function body we recorded
    while i < n:
        c = stripped[i]
        if c == "{":
            inside_fn = any(stack)
            if inside_fn:
                stack.append(False)
                i += 1
                continue
            # Header: backtrack to the previous ';', '{', or '}'.
            h = i - 1
            while h >= 0 and stripped[h] not in ";{}":
                h -= 1
            header = stripped[h + 1 : i]
            is_fn = "(" in header and not transparent_kw.search(header)
            # An initializer list (`= {` / `return {`) is not a body.
            if re.search(r"[=,]\s*$|\breturn\s*$", header):
                is_fn = False
            if is_fn:
                end = match_paren(stripped, i, "{", "}")
                if end < 0:
                    break
                bodies.append((h + 1, i, end - 1))
            stack.append(is_fn)
        elif c == "}":
            if stack:
                stack.pop()
        i += 1
    return bodies


def strip_throw_statements(body: str) -> str:
    """Blank every `throw ...;` statement (cold error paths are exempt)."""
    out = list(body)
    for m in re.finditer(r"\bthrow\b", body):
        i = m.start()
        depth = 0
        while i < len(body):
            ch = body[i]
            if ch in "([":
                depth += 1
            elif ch in ")]":
                depth -= 1
            elif ch == ";" and depth <= 0:
                break
            if ch != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


def chain_root(chain: str) -> str:
    return re.split(r"\s*(?:\.|->)\s*", chain.strip())[0]


def hot_path_bodies(stripped: str) -> list[tuple[str, int, str]]:
    """(params, body_offset, body_text) for each SLJ_HOT_PATH *definition*.

    body_offset is the offset of the opening brace in `stripped`;
    declarations without a body are skipped (checked in their defining TU).
    """
    out: list[tuple[str, int, str]] = []
    for m in re.finditer(rf"\b{HOT_PATH_MARKER}\b", stripped):
        sig_start = m.end()
        open_paren = stripped.find("(", sig_start)
        if open_paren < 0:
            continue
        after_params = match_paren(stripped, open_paren)
        if after_params < 0:
            continue
        # Skip trailing qualifiers (const, noexcept, override...) to the
        # body or the declaration's terminating ';'.
        j = after_params
        while j < len(stripped) and stripped[j] not in "{;":
            j += 1
        if j >= len(stripped) or stripped[j] == ";":
            continue
        body_end = match_paren(stripped, j, "{", "}")
        if body_end < 0:
            continue
        out.append((stripped[open_paren + 1 : after_params - 1], j, stripped[j:body_end]))
    return out


def check_hot_path_lexical(path: Path, raw: str, stripped: str) -> list[Finding]:
    findings: list[Finding] = []
    for params, j, body in hot_path_bodies(stripped):
        roots = {name for name in REF_PARAM_RE.findall(params)}
        roots.add("this")
        body_line0 = line_of(stripped, j)
        roots.update(REF_ALIAS_RE.findall(body))
        scannable = strip_throw_statements(body)

        for bm in BANNED_ALLOC_RE.finditer(scannable):
            ln = body_line0 + scannable.count("\n", 0, bm.start())
            tok = bm.group(0).strip().rstrip("(").strip()
            findings.append(
                Finding(path, ln, "hot-path-alloc", f"allocation `{tok}` in {HOT_PATH_MARKER} function")
            )
        for gm in GROWTH_CALL_RE.finditer(scannable):
            root = chain_root(gm.group("chain"))
            if root in roots:
                continue
            ln = body_line0 + scannable.count("\n", 0, gm.start())
            findings.append(
                Finding(
                    path, ln, "hot-path-alloc",
                    f"growth call `{gm.group('chain')}.{gm.group('method')}()` on "
                    f"`{root}`, which is not a reference parameter or local reference "
                    f"alias of this {HOT_PATH_MARKER} function",
                )
            )
        for cm in CONTAINER_LOCAL_RE.finditer(scannable):
            ln = body_line0 + scannable.count("\n", 0, cm.start("name"))
            findings.append(
                Finding(
                    path, ln, "hot-path-alloc",
                    f"by-value owning container local `{cm.group('name')}` in "
                    f"{HOT_PATH_MARKER} function (recycle a workspace buffer instead)",
                )
            )
    return findings


def check_unchecked_read(path: Path, rel: str, raw: str, stripped: str) -> list[Finding]:
    if rel not in DESERIALIZER_FILES:
        return []
    findings: list[Finding] = []
    for _, body_start, body_end in find_function_bodies(stripped):
        body = stripped[body_start:body_end]
        sized_from_variable = []
        for sm in SIZING_CALL_RE.finditer(body):
            arg_open = body.find("(", sm.end() - 1)
            arg_close = match_paren(body, arg_open)
            if arg_close < 0:
                continue
            arg = body[arg_open + 1 : arg_close - 1]
            if re.search(r"[A-Za-z_]", arg):
                sized_from_variable.append((sm, arg.strip()))
        if not sized_from_variable:
            continue
        if any(tok in body for tok in GUARD_TOKENS):
            continue
        for sm, arg in sized_from_variable:
            ln = line_of(stripped, body_start + sm.start())
            findings.append(
                Finding(
                    path, ln, "unchecked-read",
                    f"container sized from `{arg}` with no length guard "
                    f"(kMax* cap, need()/fail()/check_*, or throw) in the same function",
                )
            )
    return findings


def check_naked_mutex(path: Path, rel: str, raw: str, stripped: str) -> list[Finding]:
    if rel == "src/core/annotations.hpp":
        return []
    findings = []
    for m in NAKED_MUTEX_RE.finditer(stripped):
        ln = line_of(stripped, m.start())
        findings.append(
            Finding(
                path, ln, "naked-mutex",
                f"naked std::{m.group(1)}; use slj::Mutex / slj::LockGuard / "
                f"slj::CondVar from core/annotations.hpp so thread-safety "
                f"analysis sees the acquisition",
            )
        )
    return findings


def check_simd_dispatch(path: Path, rel: str, raw: str, stripped: str) -> list[Finding]:
    findings: list[Finding] = []
    # Backend selection happens exactly once: feature macros stay inside
    # core/simd.hpp; every other file dispatches through the Active tag.
    if rel != "src/core/simd.hpp":
        for m in SIMD_MACRO_RE.finditer(stripped):
            ln = line_of(stripped, m.start())
            findings.append(
                Finding(
                    path, ln, "simd-dispatch",
                    f"SIMD feature macro `{m.group(0)}` outside core/simd.hpp; "
                    f"template on a backend tag and dispatch through "
                    f"slj::simd::Active instead",
                )
            )
    # A hot kernel is one preprocessor-free code path: per-ISA #ifdef
    # ladders silently rot on whichever backend CI does not build.
    if HOT_PATH_MARKER in stripped:
        for _, j, body in hot_path_bodies(stripped):
            body_line0 = line_of(stripped, j)
            for pm in PP_COND_RE.finditer(body):
                ln = body_line0 + body.count("\n", 0, pm.start())
                findings.append(
                    Finding(
                        path, ln, "simd-dispatch",
                        f"preprocessor conditional inside a {HOT_PATH_MARKER} body; "
                        f"hot kernels must be one code path (move the choice to "
                        f"core/simd.hpp or a template parameter)",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Experimental AST engine (clang required): structural hot-path-alloc.
# ---------------------------------------------------------------------------

def _ast_hot_functions(node, out):
    """Collect (name, node) for function decls annotated slj_hot_path."""
    if isinstance(node, dict):
        if node.get("kind") in ("FunctionDecl", "CXXMethodDecl"):
            for child in node.get("inner", []) or []:
                if (
                    child.get("kind") == "AnnotateAttr"
                    and "slj_hot_path" in json.dumps(child.get("inner", ""))
                ):
                    out.append(node)
                    break
        for child in node.get("inner", []) or []:
            _ast_hot_functions(child, out)


def _ast_alloc_sites(node, out):
    if isinstance(node, dict):
        kind = node.get("kind")
        if kind == "CXXNewExpr":
            out.append((node, "new expression"))
        elif kind in ("CallExpr", "CXXConstructExpr"):
            blob = json.dumps(node.get("type", {})) + json.dumps(
                [c.get("referencedDecl", {}).get("name", "") for c in node.get("inner", []) or [] if isinstance(c, dict)]
            )
            for fn in ("malloc", "calloc", "realloc", "aligned_alloc", "make_unique", "make_shared"):
                if f'"{fn}"' in blob:
                    out.append((node, f"call to {fn}"))
                    break
        for child in node.get("inner", []) or []:
            _ast_alloc_sites(child, out)


def check_hot_path_ast(root: Path, compdb_path: Path) -> list[Finding]:
    clang = shutil.which("clang++") or shutil.which("clang")
    if clang is None:
        print("slj_lint: --engine ast requires clang++ on PATH", file=sys.stderr)
        sys.exit(2)
    try:
        compdb = json.loads(compdb_path.read_text())
    except OSError as e:
        print(f"slj_lint: cannot read compile database: {e}", file=sys.stderr)
        sys.exit(2)
    findings: list[Finding] = []
    for entry in compdb:
        src = Path(entry["directory"]) / entry["file"] if not os.path.isabs(entry["file"]) else Path(entry["file"])
        try:
            text = src.read_text(errors="replace")
        except OSError:
            continue
        if HOT_PATH_MARKER not in text:
            continue
        args = entry.get("arguments") or entry.get("command", "").split()
        # Keep -I/-D/-std from the recorded compile, swap the compiler, and
        # ask for a JSON AST instead of object code.
        keep = [a for a in args[1:] if a.startswith(("-I", "-D", "-std", "-isystem"))]
        cmd = [clang, "-fsyntax-only", "-Xclang", "-ast-dump=json", *keep, str(src)]
        try:
            proc = subprocess.run(
                cmd, cwd=entry["directory"], capture_output=True, text=True, timeout=300
            )
            ast = json.loads(proc.stdout)
        except (subprocess.SubprocessError, json.JSONDecodeError):
            print(f"slj_lint: AST dump failed for {src}; falling back to lexical", file=sys.stderr)
            continue
        hot: list = []
        _ast_hot_functions(ast, hot)
        for fn in hot:
            sites: list = []
            _ast_alloc_sites(fn, sites)
            for site, what in sites:
                loc = site.get("range", {}).get("begin", {})
                ln = loc.get("line") or loc.get("expansionLoc", {}).get("line", 0)
                findings.append(
                    Finding(src, int(ln or 0), "hot-path-alloc",
                            f"{what} in {HOT_PATH_MARKER} function {fn.get('name', '?')}")
                )
    return findings


# ---------------------------------------------------------------------------


def lint_file(path: Path, root: Path, rules: set[str], engine: str) -> list[Finding]:
    try:
        raw = path.read_text(errors="replace")
    except OSError as e:
        print(f"slj_lint: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    try:
        rel = str(path.resolve().relative_to(root.resolve())).replace(os.sep, "/")
    except ValueError:
        rel = str(path)
    stripped = strip_comments_and_strings(raw)
    raw_lines = raw.split("\n")
    allowed = suppressions(raw_lines)
    findings: list[Finding] = []
    if "hot-path-alloc" in rules and engine == "lexical" and HOT_PATH_MARKER in stripped:
        findings += check_hot_path_lexical(path, raw, stripped)
    if "unchecked-read" in rules:
        findings += check_unchecked_read(path, rel, raw, stripped)
    if "naked-mutex" in rules:
        findings += check_naked_mutex(path, rel, raw, stripped)
    if "simd-dispatch" in rules:
        findings += check_simd_dispatch(path, rel, raw, stripped)
    return [
        f for f in findings
        if f.rule not in allowed.get(f.line, ()) and "all" not in allowed.get(f.line, ())
    ]


def default_targets(root: Path) -> list[Path]:
    src = root / "src"
    if not src.is_dir():
        print(f"slj_lint: no src/ under {root}", file=sys.stderr)
        sys.exit(2)
    return sorted(p for p in src.rglob("*") if p.suffix in (".hpp", ".cpp", ".h", ".cc"))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*", type=Path, help="files to lint (default: src/ under --root)")
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels above this script)")
    ap.add_argument("--rules", default=",".join(RULES),
                    help=f"comma-separated rules to run (default: all of {', '.join(RULES)})")
    ap.add_argument("--engine", choices=("lexical", "ast"), default="lexical",
                    help="hot-path-alloc engine; ast needs clang++ and a compile database")
    ap.add_argument("--compdb", type=Path, default=None,
                    help="compile_commands.json for --engine ast (default: <root>/build/compile_commands.json)")
    ap.add_argument("-q", "--quiet", action="store_true", help="suppress the summary line")
    args = ap.parse_args()

    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(RULES)
    if unknown:
        print(f"slj_lint: unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    targets = [p for p in args.files] or default_targets(args.root)
    findings: list[Finding] = []
    for path in targets:
        findings += lint_file(path, args.root, rules, args.engine)
    if args.engine == "ast" and "hot-path-alloc" in rules:
        compdb = args.compdb or (args.root / "build" / "compile_commands.json")
        findings += check_hot_path_ast(args.root, compdb)

    findings.sort(key=lambda f: (str(f.path), f.line))
    for f in findings:
        print(f.render(args.root))
    if not args.quiet:
        scanned = len(targets)
        print(f"slj_lint: {len(findings)} finding(s) across {scanned} file(s) "
              f"[rules: {', '.join(sorted(rules))}; engine: {args.engine}]",
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
