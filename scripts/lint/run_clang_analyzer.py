#!/usr/bin/env python3
"""Clang static-analyzer lane with a checked-in suppression baseline.

Runs `clang++ --analyze` over every translation unit in the compile database
and diffs the normalized findings against scripts/lint/analyzer_baseline.txt.
Only NEW findings fail the lane, so it is adoptable on a tree with historical
findings and ratchets forever: fixing a finding shrinks the baseline on the
next `--update-baseline`, introducing one fails CI.

Baseline line format (one finding per line, sorted, stable across line-number
churn within a function):

    <repo-relative file>|<checker>|<message>

Exit codes: 0 clean (or only baselined findings), 1 new findings,
2 environment problems (no clang++, no compile database).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

# -analyzer-output text prints findings on stderr as:
#   /abs/path/file.cpp:123:45: warning: Message text [checker.package.Name]
DIAG_RE = re.compile(
    r"^(?P<file>[^:\n]+):(?P<line>\d+):(?P<col>\d+): warning: "
    r"(?P<message>.*?) \[(?P<checker>[\w.\-]+)\]$",
    re.MULTILINE,
)

# Driver flags that conflict with --analyze or waste time under it.
DROP_FLAGS = {"-c", "-MMD", "-MD", "-MP"}
DROP_WITH_ARG = {"-o", "-MF", "-MT", "-MQ"}


def load_compdb(path: Path) -> list[dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"run_clang_analyzer: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


def analyze_args(entry: dict) -> list[str]:
    """Compile flags for one entry with output/dep-gen flags stripped."""
    if "arguments" in entry:
        argv = list(entry["arguments"])[1:]
    else:
        # Shallow shlex: the build tree has no quoted paths.
        argv = entry.get("command", "").split()[1:]
    out: list[str] = []
    skip = False
    for a in argv:
        if skip:
            skip = False
            continue
        if a in DROP_WITH_ARG:
            skip = True
            continue
        if a in DROP_FLAGS:
            continue
        out.append(a)
    return out


def normalize(root: Path, file: str, checker: str, message: str) -> str:
    try:
        rel = str(Path(file).resolve().relative_to(root.resolve()))
    except ValueError:
        rel = file
    rel = rel.replace(os.sep, "/")
    return f"{rel}|{checker}|{message}"


def run_analyzer(clang: str, root: Path, entries: list[dict],
                 verbose: bool) -> tuple[set[str], list[str]]:
    """All normalized findings plus the raw diagnostic lines for artifacts."""
    findings: set[str] = set()
    raw: list[str] = []
    for entry in entries:
        src = entry["file"]
        cmd = [clang, "--analyze", "-analyzer-output", "text",
               *analyze_args(entry)]
        if src not in cmd:
            cmd.append(src)
        proc = subprocess.run(
            cmd, cwd=entry.get("directory", str(root)),
            capture_output=True, text=True, timeout=600,
        )
        text = proc.stdout + proc.stderr
        for m in DIAG_RE.finditer(text):
            findings.add(normalize(root, m.group("file"), m.group("checker"),
                                   m.group("message")))
            raw.append(m.group(0))
        if verbose and proc.returncode not in (0, 1):
            print(f"run_clang_analyzer: {src}: clang exited "
                  f"{proc.returncode}", file=sys.stderr)
    return findings, raw


def load_baseline(path: Path) -> set[str]:
    if not path.is_file():
        return set()
    lines = set()
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            lines.add(line)
    return lines


BASELINE_HEADER = """\
# clang-static-analyzer suppression baseline — known findings that predate
# the lane. scripts/ci.sh --analyze fails only on findings NOT in this file,
# so new code is held to zero while the backlog shrinks independently.
# One `file|checker|message` per line. Regenerate (after review!) with:
#   python3 scripts/lint/run_clang_analyzer.py --root . --update-baseline
"""


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=Path("."),
                    help="repository root (default: .)")
    ap.add_argument("--compdb", type=Path, default=None,
                    help="compile_commands.json (default: ROOT/build/)")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="baseline file (default: scripts/lint/analyzer_baseline.txt)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from the current findings and exit 0")
    ap.add_argument("--raw-out", type=Path, default=None,
                    help="also write the raw diagnostic lines to FILE (CI artifact)")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    clang = shutil.which("clang++") or shutil.which("clang")
    if clang is None:
        print("run_clang_analyzer: clang++ not on PATH", file=sys.stderr)
        return 2
    compdb_path = args.compdb or (args.root / "build" / "compile_commands.json")
    if not compdb_path.is_file():
        print(f"run_clang_analyzer: no compile database at {compdb_path}; "
              f"configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first",
              file=sys.stderr)
        return 2
    baseline_path = args.baseline or (
        args.root / "scripts" / "lint" / "analyzer_baseline.txt")

    entries = [e for e in load_compdb(compdb_path)
               if "/src/" in e["file"].replace(os.sep, "/")]
    findings, raw = run_analyzer(clang, args.root, entries, args.verbose)
    print(f"run_clang_analyzer: analyzed {len(entries)} TU(s), "
          f"{len(findings)} finding(s)", file=sys.stderr)

    if args.raw_out is not None:
        args.raw_out.parent.mkdir(parents=True, exist_ok=True)
        args.raw_out.write_text("\n".join(raw) + ("\n" if raw else ""))

    if args.update_baseline:
        baseline_path.write_text(
            BASELINE_HEADER + "".join(f"{f}\n" for f in sorted(findings)))
        print(f"run_clang_analyzer: wrote {len(findings)} finding(s) to "
              f"{baseline_path}", file=sys.stderr)
        return 0

    baseline = load_baseline(baseline_path)
    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)
    if fixed:
        print(f"run_clang_analyzer: {len(fixed)} baselined finding(s) no "
              f"longer fire — shrink the baseline with --update-baseline",
              file=sys.stderr)
    if new:
        print(f"run_clang_analyzer: {len(new)} NEW finding(s) not in "
              f"{baseline_path}:", file=sys.stderr)
        for f in new:
            print(f"  {f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
